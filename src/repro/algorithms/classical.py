"""The classical (rank ``m*n*k``) algorithm for any dims.

Included both as the baseline row of Table 1 and because the execution
engine treats "classical" uniformly with fast algorithms (it is simply the
trivial rank-``mnk`` decomposition of the matmul tensor, with phi = 0 and no
approximation error).
"""

from __future__ import annotations

from repro.algorithms.spec import BilinearAlgorithm, coeff_matrix
from repro.linalg.laurent import Laurent
from repro.linalg.tensor import a_index, b_index, c_index

__all__ = ["classical_algorithm"]


def classical_algorithm(m: int, n: int, k: int) -> BilinearAlgorithm:
    """Build the exact rank-``m*n*k`` classical rule for ``<m, n, k>``.

    Multiplication ``(i, l, j)`` computes ``A[i, l] * B[l, j]`` and
    contributes with coefficient 1 to ``C[i, j]``.
    """
    r = m * n * k
    U = coeff_matrix(m * n, r)
    V = coeff_matrix(n * k, r)
    W = coeff_matrix(m * k, r)
    one = Laurent.one()
    col = 0
    for i in range(m):
        for l in range(n):
            for j in range(k):
                U[a_index(i, l, m, n), col] = one
                V[b_index(l, j, n, k), col] = one
                W[c_index(i, j, m, k), col] = one
                col += 1
    alg = BilinearAlgorithm(
        name=f"classical{m}{n}{k}",
        m=m,
        n=n,
        k=k,
        U=U,
        V=V,
        W=W,
        source="classical definition of matrix multiplication",
    )
    alg._sigma = 0
    alg._exact = True
    return alg
