"""Algebraic transforms on bilinear algorithms.

The matmul tensor's symmetries let one published rule generate a family
(paper §6: "an algorithm for dimensions <m,n,k> can be translated into an
algorithm for <n,m,k> and any other reordering").  We implement:

- :func:`rotate` — cyclic symmetry ``<m,n,k> -> <n,k,m>`` (rank preserved);
- :func:`transpose_dual` — ``C = A B  <=>  C^T = B^T A^T`` giving
  ``<m,n,k> -> <k,n,m>`` (rank preserved);
- :func:`permute` — any of the 6 orderings, composed from the above;
- :func:`tensor_product` — the Kronecker construction
  ``<m1,n1,k1>:r1 (x) <m2,n2,k2>:r2 = <m1 m2, n1 n2, k1 k2>:r1 r2``
  (how Strassen's rule becomes ``<4,4,4>:49``, and how APA rules compose
  with phi adding);
- :func:`stack_m` — direct sum along the first dimension
  ``<m1,n,k>:r1 (+) <m2,n,k>:r2 = <m1+m2,n,k>:r1+r2``;
- :func:`substitute_lambda` — regrade ``lambda -> lambda**t``;
- :func:`sandwich` — the basis-change (de Groote) orbit
  ``(A, B) -> (X A Y, Y^-1 B Z)``: rank, sigma, phi, and exactness are
  all preserved, but the coefficient *growth factor* governing roundoff
  is not — Dumas–Pernet–Sedoglavic (arXiv 2402.05630) pick the orbit
  element minimizing it.

Every transform preserves validity; the test suite re-verifies all outputs
symbolically.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

import numpy as np

from repro.algorithms.spec import BilinearAlgorithm, coeff_matrix
from repro.linalg.laurent import Laurent

__all__ = [
    "rotate",
    "transpose_dual",
    "permute",
    "tensor_product",
    "stack_m",
    "substitute_lambda",
    "sandwich",
]


def _transpose_rows(M: np.ndarray, rows: int, cols: int) -> np.ndarray:
    """Permute the row indexing of a flat (rows*cols, r) coefficient matrix
    from row-major over ``rows x cols`` to row-major over ``cols x rows``
    (i.e. transpose the matrix shape the rows encode)."""
    r = M.shape[1]
    out = np.empty((rows * cols, r), dtype=object)
    for i in range(rows):
        for j in range(cols):
            out[j * rows + i, :] = M[i * cols + j, :]
    return out


def rotate(alg: BilinearAlgorithm, name: str | None = None) -> BilinearAlgorithm:
    """Cyclic symmetry: an ``<m,n,k>`` rule becomes an ``<n,k,m>`` rule.

    If ``(U, V, W)`` decomposes ``T<m,n,k>`` then ``(V, W', U')`` decomposes
    ``T<n,k,m>``, where the primes transpose the matrix shape each flat row
    index encodes (``W`` rows go from C-as-``m x k`` to B'-as-``k x m``;
    ``U`` rows from A-as-``m x n`` to C'-as-``n x m``).
    """
    m, n, k = alg.m, alg.n, alg.k
    new = BilinearAlgorithm(
        name=name or f"{alg.name}_rot",
        m=n,
        n=k,
        k=m,
        U=alg.V.copy(),
        V=_transpose_rows(alg.W, m, k),
        W=_transpose_rows(alg.U, m, n),
        source=f"cyclic rotation of {alg.name}",
    )
    return new


def transpose_dual(alg: BilinearAlgorithm, name: str | None = None) -> BilinearAlgorithm:
    """Transpose duality: an ``<m,n,k>`` rule becomes a ``<k,n,m>`` rule.

    From ``C = A B  <=>  C^T = B^T A^T``: the new A' is the old ``B``
    transposed, the new B' the old ``A`` transposed, and the new C' the old
    ``C`` transposed.
    """
    m, n, k = alg.m, alg.n, alg.k
    return BilinearAlgorithm(
        name=name or f"{alg.name}_T",
        m=k,
        n=n,
        k=m,
        U=_transpose_rows(alg.V, n, k),
        V=_transpose_rows(alg.U, m, n),
        W=_transpose_rows(alg.W, m, k),
        source=f"transpose dual of {alg.name}",
    )


#: Shortest generator words for each permutation of the dim roles.
#: A permutation ``p`` means: new dims = (dims[p[0]], dims[p[1]], dims[p[2]]).
#: ``rotate`` realizes (1,2,0); ``transpose_dual`` realizes (2,1,0).
_PERM_WORDS: dict[tuple[int, int, int], tuple[str, ...]] = {
    (0, 1, 2): (),
    (1, 2, 0): ("rot",),
    (2, 0, 1): ("rot", "rot"),
    (2, 1, 0): ("t",),
    (1, 0, 2): ("t", "rot"),
    (0, 2, 1): ("rot", "t"),
}


def permute(
    alg: BilinearAlgorithm,
    perm: tuple[int, int, int],
    name: str | None = None,
) -> BilinearAlgorithm:
    """Reorder the dims of ``alg`` by ``perm``.

    ``perm = (p0, p1, p2)`` produces an algorithm for dims
    ``(alg.dims[p0], alg.dims[p1], alg.dims[p2])`` with the same rank,
    sigma, and phi.
    """
    if sorted(perm) != [0, 1, 2]:
        raise ValueError(f"perm must be a permutation of (0,1,2), got {perm}")
    word = _PERM_WORDS.get(tuple(perm))
    if word is None:  # unreachable given the validation above
        raise ValueError(f"unsupported permutation {perm}")
    out = alg
    for step in word:
        out = rotate(out) if step == "rot" else transpose_dual(out)
    expected = tuple(alg.dims[p] for p in perm)
    if out.dims != expected:
        raise AssertionError(
            f"permutation produced dims {out.dims}, expected {expected} "
            "(generator-word table is inconsistent)"
        )
    out.name = name or f"{alg.name}_p{''.join(map(str, perm))}"
    out.source = f"dims permutation {perm} of {alg.name}"
    return out


def tensor_product(
    alg1: BilinearAlgorithm,
    alg2: BilinearAlgorithm,
    name: str | None = None,
    regrade: bool | str = "auto",
) -> BilinearAlgorithm:
    """Kronecker (tensor) product of two rules.

    The combined rule multiplies ``<m1 m2, n1 n2, k1 k2>`` with rank
    ``r1 * r2``: index ``A`` rows as ``i = i1 * m2 + i2`` (and similarly
    all other axes), and set

        U[(i, l), (t1, t2)] = U1[(i1, l1), t1] * U2[(i2, l2), t2]

    Grading of two APA factors: the naive product has the two error
    series sharing powers of lambda, which *could* let negative powers
    survive or the lambda**0 term drift; substituting
    ``lambda -> lambda**t`` in the second factor separates them at the
    cost of inflating phi (``phi = phi1 + t*phi2``).  ``regrade='auto'``
    (default) builds the cheap ungraded product first and keeps it when
    the exact verifier certifies it (it usually does — the error terms of
    independent factors do not conspire), falling back to the safe
    regrade otherwise.  ``True``/``False`` force either behaviour.
    """
    m1, n1, k1 = alg1.dims
    m2, n2, k2 = alg2.dims
    r1, r2 = alg1.rank, alg2.rank

    both_apa = _uses_lambda(alg1) and _uses_lambda(alg2)
    if regrade == "auto" and both_apa:
        candidate = tensor_product(alg1, alg2, name=name, regrade=False)
        from repro.algorithms.verify import verify_algorithm

        report = verify_algorithm(candidate)
        if report.valid and (report.is_exact or report.sigma >= 1):
            return candidate
        return tensor_product(alg1, alg2, name=name, regrade=True)

    A2 = alg2
    if regrade is True and both_apa:
        span = _max_abs_exponent(alg1) + 1
        A2 = substitute_lambda(alg2, span + 1)

    def _kron(M1: np.ndarray, M2: np.ndarray, rows1: int, cols1: int,
              rows2: int, cols2: int) -> np.ndarray:
        rows, cols = rows1 * rows2, cols1 * cols2
        out = coeff_matrix(rows * cols, r1 * r2)
        for p1 in range(rows1 * cols1):
            i1, l1 = divmod(p1, cols1)
            for t1 in range(r1):
                c1 = M1[p1, t1]
                if not c1:
                    continue
                for p2 in range(rows2 * cols2):
                    i2, l2 = divmod(p2, cols2)
                    for t2 in range(r2):
                        c2 = M2[p2, t2]
                        if not c2:
                            continue
                        row = (i1 * rows2 + i2) * cols + (l1 * cols2 + l2)
                        out[row, t1 * r2 + t2] = c1 * c2
        return out

    return BilinearAlgorithm(
        name=name or f"{alg1.name}x{alg2.name}",
        m=m1 * m2,
        n=n1 * n2,
        k=k1 * k2,
        U=_kron(alg1.U, A2.U, m1, n1, m2, n2),
        V=_kron(alg1.V, A2.V, n1, k1, n2, k2),
        W=_kron(alg1.W, A2.W, m1, k1, m2, k2),
        source=f"tensor product {alg1.name} (x) {alg2.name}",
    )


def stack_m(
    alg1: BilinearAlgorithm,
    alg2: BilinearAlgorithm,
    name: str | None = None,
) -> BilinearAlgorithm:
    """Direct sum along the first dimension.

    Both rules must share ``(n, k)``.  The combined rule computes the first
    ``m1`` rows of ``C`` with ``alg1`` and the remaining ``m2`` rows with
    ``alg2``, sharing nothing — rank is ``r1 + r2``.  This is how e.g. a
    ``<5,2,2>`` rule is assembled from ``<3,2,2>`` and ``<2,2,2>`` pieces.
    """
    if (alg1.n, alg1.k) != (alg2.n, alg2.k):
        raise ValueError(
            f"stack_m requires matching (n,k): {alg1.dims} vs {alg2.dims}"
        )
    m1, n, k = alg1.dims
    m2 = alg2.m
    r1, r2 = alg1.rank, alg2.rank
    m = m1 + m2
    r = r1 + r2

    U = coeff_matrix(m * n, r)
    U[: m1 * n, :r1] = alg1.U
    U[m1 * n :, r1:] = alg2.U

    V = coeff_matrix(n * k, r)
    V[:, :r1] = alg1.V
    V[:, r1:] = alg2.V

    W = coeff_matrix(m * k, r)
    W[: m1 * k, :r1] = alg1.W
    W[m1 * k :, r1:] = alg2.W

    return BilinearAlgorithm(
        name=name or f"{alg1.name}+{alg2.name}",
        m=m,
        n=n,
        k=k,
        U=U,
        V=V,
        W=W,
        source=f"row stack of {alg1.name} and {alg2.name}",
    )


def substitute_lambda(
    alg: BilinearAlgorithm, power: int, name: str | None = None
) -> BilinearAlgorithm:
    """Regrade the APA parameter: ``lambda -> lambda**power`` everywhere.

    Validity is preserved (the error polynomial's exponents are scaled by
    ``power``); sigma scales by ``power`` and so does phi.
    """

    def _sub(M: np.ndarray) -> np.ndarray:
        out = np.empty_like(M)
        for idx, entry in np.ndenumerate(M):
            out[idx] = entry.substitute_power(power) if entry else Laurent.zero()
        return out

    return BilinearAlgorithm(
        name=name or f"{alg.name}_lam{power}",
        m=alg.m,
        n=alg.n,
        k=alg.k,
        U=_sub(alg.U),
        V=_sub(alg.V),
        W=_sub(alg.W),
        source=f"lambda -> lambda**{power} regrade of {alg.name}",
    )


def _fraction_matrix(M: Sequence[Sequence[object]], size: int,
                     label: str) -> list[list[Fraction]]:
    """Validate and convert a basis-change matrix to exact Fractions.

    Entries may be ints, Fractions, or floats; floats convert exactly
    (binary floats are dyadic rationals), which is precisely the class
    of matrices that keeps Laurent coefficients exact.
    """
    rows = [list(row) for row in M]
    if len(rows) != size or any(len(row) != size for row in rows):
        raise ValueError(
            f"{label} must be {size}x{size}, got "
            f"{len(rows)}x{len(rows[0]) if rows else 0}")
    return [[Fraction(x) for x in row] for row in rows]


def _fraction_inverse(M: list[list[Fraction]],
                      label: str) -> list[list[Fraction]]:
    """Exact inverse by Gauss–Jordan elimination over the rationals."""
    size = len(M)
    aug = [list(row) + [Fraction(int(i == j)) for j in range(size)]
           for i, row in enumerate(M)]
    for col in range(size):
        pivot = next((r for r in range(col, size) if aug[r][col] != 0), None)
        if pivot is None:
            raise ValueError(f"{label} is singular; sandwich needs an "
                             f"invertible basis change")
        aug[col], aug[pivot] = aug[pivot], aug[col]
        inv = Fraction(1) / aug[col][col]
        aug[col] = [x * inv for x in aug[col]]
        for r in range(size):
            if r != col and aug[r][col] != 0:
                factor = aug[r][col]
                aug[r] = [a - factor * b for a, b in zip(aug[r], aug[col])]
    return [row[size:] for row in aug]


def _fraction_transpose(M: list[list[Fraction]]) -> list[list[Fraction]]:
    return [list(col) for col in zip(*M)]


def _fraction_kron(P: list[list[Fraction]],
                   Q: list[list[Fraction]]) -> list[list[Fraction]]:
    """Kronecker product of two exact matrices (row-major block order)."""
    p, q = len(P), len(Q)
    out = [[Fraction(0)] * (p * q) for _ in range(p * q)]
    for i in range(p):
        for j in range(p):
            pij = P[i][j]
            if pij == 0:
                continue
            for a in range(q):
                for b in range(q):
                    if Q[a][b] != 0:
                        out[i * q + a][j * q + b] = pij * Q[a][b]
    return out


def _apply_left(F: list[list[Fraction]], M: np.ndarray) -> np.ndarray:
    """Exact matrix product ``F @ M`` of a Fraction matrix with a
    Laurent coefficient matrix."""
    rows, r = M.shape
    if len(F) != rows or any(len(row) != rows for row in F):
        raise AssertionError("basis-change factor shape mismatch")
    out = coeff_matrix(rows, r)
    for i in range(rows):
        Fi = F[i]
        for t in range(r):
            acc = Laurent.zero()
            for j in range(rows):
                c = Fi[j]
                if c == 0:
                    continue
                entry = M[j, t]
                if entry and not entry.is_zero():
                    acc = acc + entry.scale(c)
            out[i, t] = acc
    return out


def sandwich(
    alg: BilinearAlgorithm,
    X: Sequence[Sequence[object]],
    Y: Sequence[Sequence[object]],
    Z: Sequence[Sequence[object]],
    name: str | None = None,
) -> BilinearAlgorithm:
    """Basis-change orbit: run ``alg`` on ``(X A Y, Y^-1 B Z)``.

    From ``(X A Y)(Y^-1 B Z) = X (A B) Z``: feeding transformed
    operands to the original rule yields ``X C Z``, and undoing the
    outer factors recovers ``C``.  Folding the (exact, rational)
    transforms into the coefficient tensors — row-major ``vec``, so
    ``vec(XAY) = (X (x) Y^T) vec(A)`` —

    - ``U' = (X (x) Y^T)^T U``
    - ``V' = (Y^-1 (x) Z^T)^T V``
    - ``W' = (X^-1 (x) (Z^-1)^T) W``

    produces an equivalent rule: same dims, rank, sigma, phi, and
    exactness (the suite re-verifies symbolically), but a different
    coefficient **growth factor** — the de Groote orbit degree of
    freedom Dumas–Pernet–Sedoglavic (arXiv 2402.05630) optimize to cut
    the accumulated roundoff of Strassen-like rules.

    ``X`` is ``m x m``, ``Y`` is ``n x n``, ``Z`` is ``k x k``; entries
    must be rational (ints, Fractions, or binary floats) and each
    matrix invertible.
    """
    m, n, k = alg.dims
    Xf = _fraction_matrix(X, m, "X")
    Yf = _fraction_matrix(Y, n, "Y")
    Zf = _fraction_matrix(Z, k, "Z")
    Xinv = _fraction_inverse(Xf, "X")
    Yinv = _fraction_inverse(Yf, "Y")
    Zinv = _fraction_inverse(Zf, "Z")

    U_map = _fraction_transpose(_fraction_kron(Xf, _fraction_transpose(Yf)))
    V_map = _fraction_transpose(_fraction_kron(Yinv, _fraction_transpose(Zf)))
    W_map = _fraction_kron(Xinv, _fraction_transpose(Zinv))

    return BilinearAlgorithm(
        name=name or f"{alg.name}_sandwich",
        m=m,
        n=n,
        k=k,
        U=_apply_left(U_map, alg.U),
        V=_apply_left(V_map, alg.V),
        W=_apply_left(W_map, alg.W),
        source=f"basis-change (sandwich) orbit of {alg.name}",
    )


def _uses_lambda(alg: BilinearAlgorithm) -> bool:
    for M in (alg.U, alg.V, alg.W):
        for entry in M.flat:
            if entry and not entry.is_constant():
                return True
    return False


def _max_abs_exponent(alg: BilinearAlgorithm) -> int:
    worst = 0
    for M in (alg.U, alg.V, alg.W):
        for entry in M.flat:
            if entry and not entry.is_zero():
                worst = max(worst, abs(entry.min_exponent()), abs(entry.max_exponent()))
    return worst
