"""Strassen's exact ``<2,2,2>`` rank-7 algorithm and the Winograd variant.

Strassen [31] reduced the 8 multiplications of the classical 2x2 rule to 7;
Winograd's rearrangement keeps rank 7 but needs only 15 additions instead
of 18 (useful for the addition-cost ablation — the paper notes additions
are the main impediment to realizing the ideal speedup).

Both rules are verified symbolically in the test suite, so the
transcriptions below are machine-checked against the matmul tensor.
"""

from __future__ import annotations

from repro.algorithms.dsl import rule_to_algorithm
from repro.algorithms.spec import BilinearAlgorithm

__all__ = ["strassen_algorithm", "strassen_winograd_algorithm"]


def strassen_algorithm() -> BilinearAlgorithm:
    """Strassen's original 7-multiplication rule for ``<2,2,2>``.

    M1 = (A11 + A22)(B11 + B22)      C11 = M1 + M4 - M5 + M7
    M2 = (A21 + A22) B11             C12 = M3 + M5
    M3 = A11 (B12 - B22)             C21 = M2 + M4
    M4 = A22 (B21 - B11)             C22 = M1 - M2 + M3 + M6
    M5 = (A11 + A12) B22
    M6 = (A21 - A11)(B11 + B12)
    M7 = (A12 - A22)(B21 + B22)
    """
    a = [
        {(0, 0): 1, (1, 1): 1},      # M1
        {(1, 0): 1, (1, 1): 1},      # M2
        {(0, 0): 1},                 # M3
        {(1, 1): 1},                 # M4
        {(0, 0): 1, (0, 1): 1},      # M5
        {(1, 0): 1, (0, 0): -1},     # M6
        {(0, 1): 1, (1, 1): -1},     # M7
    ]
    b = [
        {(0, 0): 1, (1, 1): 1},      # M1
        {(0, 0): 1},                 # M2
        {(0, 1): 1, (1, 1): -1},     # M3
        {(1, 0): 1, (0, 0): -1},     # M4
        {(1, 1): 1},                 # M5
        {(0, 0): 1, (0, 1): 1},      # M6
        {(1, 0): 1, (1, 1): 1},      # M7
    ]
    c = {
        (0, 0): {0: 1, 3: 1, 4: -1, 6: 1},
        (0, 1): {2: 1, 4: 1},
        (1, 0): {1: 1, 3: 1},
        (1, 1): {0: 1, 1: -1, 2: 1, 5: 1},
    }
    return rule_to_algorithm(
        "strassen222", 2, 2, 2, a, b, c,
        source="Strassen 1969, Numerische Mathematik 13",
    )


def strassen_winograd_algorithm() -> BilinearAlgorithm:
    """The Winograd form of Strassen's algorithm (7 mults, 15 additions).

    With S1 = A21+A22, S2 = S1-A11, S3 = A11-A21, S4 = A12-S2 and
    T1 = B12-B11, T2 = B22-T1, T3 = B22-B12, T4 = T2-B21:

    M1 = A11 B11   M2 = A12 B21   M3 = S4 B22   M4 = A22 T4
    M5 = S1 T1     M6 = S2 T2     M7 = S3 T3

    C11 = M1 + M2
    C12 = M1 + M6 + M5 + M3
    C21 = M1 + M6 + M7 - M4
    C22 = M1 + M6 + M7 + M5

    The S/T combinations below are expanded to raw entries of A and B (the
    rank-decomposition view does not express common subexpressions; the
    addition savings are recovered by the code generator's subexpression
    reuse — see :mod:`repro.codegen`).
    """
    a = [
        {(0, 0): 1},                                   # M1: A11
        {(0, 1): 1},                                   # M2: A12
        {(0, 1): 1, (1, 0): -1, (1, 1): -1, (0, 0): 1},  # M3: S4 = A12-S2
        {(1, 1): 1},                                   # M4: A22
        {(1, 0): 1, (1, 1): 1},                        # M5: S1
        {(1, 0): 1, (1, 1): 1, (0, 0): -1},            # M6: S2
        {(0, 0): 1, (1, 0): -1},                       # M7: S3
    ]
    b = [
        {(0, 0): 1},                                   # M1: B11
        {(1, 0): 1},                                   # M2: B21
        {(1, 1): 1},                                   # M3: B22
        {(1, 1): 1, (0, 1): -1, (0, 0): 1, (1, 0): -1},  # M4: T4 = T2-B21
        {(0, 1): 1, (0, 0): -1},                       # M5: T1
        {(1, 1): 1, (0, 1): -1, (0, 0): 1},            # M6: T2
        {(1, 1): 1, (0, 1): -1},                       # M7: T3
    ]
    c = {
        (0, 0): {0: 1, 1: 1},
        (0, 1): {0: 1, 5: 1, 4: 1, 2: 1},
        (1, 0): {0: 1, 5: 1, 6: 1, 3: -1},
        (1, 1): {0: 1, 5: 1, 6: 1, 4: 1},
    }
    return rule_to_algorithm(
        "winograd222", 2, 2, 2, a, b, c,
        source="Winograd's variant of Strassen's algorithm",
    )
