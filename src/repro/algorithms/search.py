"""Numerical discovery of fast matmul rules via ALS (extension, §2.1).

The Smirnov-class algorithms of Table 1 were found by numerical
optimization over tensor decompositions.  This module implements the
workhorse of that approach — alternating least squares (ALS) on the
matmul tensor — both to document the route by which such algorithms are
discovered and as a working tool for small cases:

- rank ``m*n*k`` (classical) decompositions converge from random starts;
- rank-7 ``<2,2,2>`` (Strassen-rank) decompositions are routinely found
  with a few random restarts;
- lower (border) ranks show the characteristic ALS signature of APA
  algorithms: the residual stalls at a nonzero floor while factor norms
  blow up — numerical evidence of *border* rank below rank.

ALS update (for U, cyclically): with the Khatri-Rao product
``Z = khatri_rao(W, V)``, solve the ridge system
``U (Z^T Z + reg I) = T_(1) Z``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg.tensor import matmul_tensor

__all__ = ["ALSResult", "khatri_rao", "als_decompose", "discover_algorithm"]


def khatri_rao(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Column-wise Kronecker product of ``(I, r)`` and ``(J, r)`` -> ``(I*J, r)``."""
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[1]:
        raise ValueError("khatri_rao needs matching column counts")
    r = A.shape[1]
    return (A[:, None, :] * B[None, :, :]).reshape(-1, r)


@dataclass
class ALSResult:
    """Factors and convergence record of one ALS run."""

    U: np.ndarray
    V: np.ndarray
    W: np.ndarray
    residuals: list[float]
    converged: bool

    @property
    def residual(self) -> float:
        return self.residuals[-1]

    @property
    def max_factor_norm(self) -> float:
        return max(
            float(np.abs(self.U).max()),
            float(np.abs(self.V).max()),
            float(np.abs(self.W).max()),
        )


def _unfoldings(T: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    I, J, K = T.shape
    T1 = T.reshape(I, J * K)                      # rows: mode 1
    T2 = T.transpose(1, 0, 2).reshape(J, I * K)   # rows: mode 2
    T3 = T.transpose(2, 0, 1).reshape(K, I * J)   # rows: mode 3
    return T1, T2, T3


def als_decompose(
    T: np.ndarray,
    rank: int,
    iters: int = 500,
    tol: float = 1e-10,
    reg: float = 1e-9,
    rng: np.random.Generator | None = None,
    init_scale: float = 0.5,
) -> ALSResult:
    """One ALS run on an order-3 tensor from a random start.

    ``reg`` is a small ridge term keeping the normal equations solvable
    when factors become collinear (which they do near border-rank
    decompositions).  Residual is the relative Frobenius norm
    ``||T - [[U,V,W]]|| / ||T||``.
    """
    if T.ndim != 3:
        raise ValueError("T must be an order-3 tensor")
    if rank < 1:
        raise ValueError("rank must be >= 1")
    if iters < 1:
        raise ValueError("iters must be >= 1")
    rng = rng or np.random.default_rng(0)
    T = T.astype(np.float64)
    I, J, K = T.shape
    T1, T2, T3 = _unfoldings(T)
    t_norm = np.linalg.norm(T)
    if t_norm == 0:
        raise ValueError("zero tensor")

    U = rng.normal(0, init_scale, (I, rank))
    V = rng.normal(0, init_scale, (J, rank))
    W = rng.normal(0, init_scale, (K, rank))

    def solve(unfolded: np.ndarray, P: np.ndarray, Q: np.ndarray) -> np.ndarray:
        Z = khatri_rao(P, Q)  # rows ordered to match the unfolding columns
        G = (P.T @ P) * (Q.T @ Q) + reg * np.eye(rank)
        return np.linalg.solve(G, Z.T @ unfolded.T).T

    residuals: list[float] = []
    converged = False
    for _ in range(iters):
        # Unfolding column orders: T1 columns iterate (j, k) with j outer,
        # so Z must be khatri_rao(V, W); similarly for the others.
        U = solve(T1, V, W)
        V = solve(T2, U, W)
        W = solve(T3, U, V)
        approx = U @ khatri_rao(V, W).T
        res = float(np.linalg.norm(T1 - approx) / t_norm)
        residuals.append(res)
        if res < tol:
            converged = True
            break
        if len(residuals) > 10 and abs(residuals[-10] - res) < 1e-14:
            break  # stalled
    return ALSResult(U=U, V=V, W=W, residuals=residuals, converged=converged)


def discover_algorithm(
    m: int,
    n: int,
    k: int,
    rank: int,
    restarts: int = 10,
    iters: int = 500,
    tol: float = 1e-8,
    seed: int = 0,
) -> ALSResult:
    """Search for a rank-``rank`` decomposition of ``T<m,n,k>``.

    Returns the best run over ``restarts`` random initializations.  A
    ``converged`` result with integer-looking factors is a *bona fide*
    fast algorithm; a stalled result with exploding factor norms is the
    border-rank signature (an APA algorithm lives at that rank).
    """
    T = matmul_tensor(m, n, k).astype(np.float64)
    best: ALSResult | None = None
    for attempt in range(restarts):
        rng = np.random.default_rng(seed + attempt)
        result = als_decompose(T, rank, iters=iters, tol=tol, rng=rng)
        if best is None or result.residual < best.residual:
            best = result
        if best.converged:
            break
    assert best is not None
    return best
