"""Bini's APA ``<3,2,2>`` rank-10 algorithm (paper §2.2) and relatives.

This is the rule reproduced verbatim in the paper, with one correction: the
paper text (as provided) lists ``M10 = (lam*A31 + A32)(B12 - lam*B22)``,
which is identical in its B-part to ``M9`` and does not verify.  Symbolic
re-derivation — enforcing ``C21 = A21*B11 + A22*B21 + O(lam)``,
``C31 = lam**-1 (-M8 + M10)`` = ``A31*B11 + A32*B21 + O(lam)`` — yields

    M10 = (lam*A31 + A32) * (B11 + lam*B21)

with which the whole rule satisfies eq. (1) with sigma = 1 and phi = 1
(our verifier proves this over exact rational arithmetic).

The algorithm's structure — two overlapping rank-5 *partial* 2x2 products
sharing the middle row of A — also yields a construction for stacking rules
along the first dimension; see :func:`repro.algorithms.transforms.stack_m`.
"""

from __future__ import annotations

from repro.algorithms.dsl import L, Li, rule_to_algorithm
from repro.algorithms.spec import BilinearAlgorithm

__all__ = ["bini322_algorithm"]


def bini322_algorithm() -> BilinearAlgorithm:
    """Bini, Capovani, Romani & Lotti's ``<3,2,2>`` rank-10 APA rule.

    M1  = (A11 + A22)(lam*B11 + B22)     C11 = lam**-1 (M1 + M2 - M3 + M4)
    M2  = A22 (-B21 - B22)               C12 = lam**-1 (-M3 + M5)
    M3  = A11 B22                        C21 = M4 + M6 - M10
    M4  = (lam*A12 + A22)(-lam*B11 + B21)  C22 = M1 - M5 + M9
    M5  = (A11 + lam*A12)(lam*B12 + B22) C31 = lam**-1 (-M8 + M10)
    M6  = (A21 + A32)(B11 + lam*B22)     C32 = lam**-1 (M6 + M7 - M8 + M9)
    M7  = A21 (-B11 - B12)
    M8  = A32 B11
    M9  = (A21 + lam*A31)(B12 - lam*B22)
    M10 = (lam*A31 + A32)(B11 + lam*B21)   [corrected; see module docstring]

    Error: ``C_hat = A @ B + lam * E + O(lam**2)`` with, e.g.,
    ``E11 = -A12 * B11`` (paper reports the magnitude entry A12*B11).
    """
    a = [
        {(0, 0): 1, (1, 1): 1},          # M1: A11 + A22
        {(1, 1): 1},                     # M2: A22
        {(0, 0): 1},                     # M3: A11
        {(0, 1): L, (1, 1): 1},          # M4: lam A12 + A22
        {(0, 0): 1, (0, 1): L},          # M5: A11 + lam A12
        {(1, 0): 1, (2, 1): 1},          # M6: A21 + A32
        {(1, 0): 1},                     # M7: A21
        {(2, 1): 1},                     # M8: A32
        {(1, 0): 1, (2, 0): L},          # M9: A21 + lam A31
        {(2, 0): L, (2, 1): 1},          # M10: lam A31 + A32
    ]
    b = [
        {(0, 0): L, (1, 1): 1},          # M1: lam B11 + B22
        {(1, 0): -1, (1, 1): -1},        # M2: -B21 - B22
        {(1, 1): 1},                     # M3: B22
        {(0, 0): -L, (1, 0): 1},         # M4: -lam B11 + B21
        {(0, 1): L, (1, 1): 1},          # M5: lam B12 + B22
        {(0, 0): 1, (1, 1): L},          # M6: B11 + lam B22
        {(0, 0): -1, (0, 1): -1},        # M7: -B11 - B12
        {(0, 0): 1},                     # M8: B11
        {(0, 1): 1, (1, 1): -L},         # M9: B12 - lam B22
        {(0, 0): 1, (1, 0): L},          # M10: B11 + lam B21 (corrected)
    ]
    c = {
        (0, 0): {0: Li, 1: Li, 2: -Li, 3: Li},
        (0, 1): {2: -Li, 4: Li},
        (1, 0): {3: 1, 5: 1, 9: -1},
        (1, 1): {0: 1, 4: -1, 8: 1},
        (2, 0): {7: -Li, 9: Li},
        (2, 1): {5: Li, 6: Li, 7: -Li, 8: Li},
    }
    return rule_to_algorithm(
        "bini322", 3, 2, 2, a, b, c,
        source="Bini, Capovani, Romani, Lotti 1979 (IPL 8:5); rule as in "
               "Ballard et al. 2021 §2.2 with corrected M10",
    )
