"""The named algorithm registry mirroring the paper's Table 1.

Two kinds of entries:

- **real** algorithms, constructed (and symbolically verifiable) from the
  paper's Bini rule, Strassen, and the algebraic transforms — these have
  full Laurent coefficient matrices and run through the generic executor;
- **surrogate** algorithms (:mod:`repro.algorithms.smirnov`) carrying the
  exact Table-1 metadata for the rules whose coefficients are not
  recoverable offline.

``TABLE1`` lists the paper's table rows in order; :func:`get_algorithm`
resolves any catalog name.  Construction is lazy and cached — building the
tensor-product algorithms costs a little symbolic work that most callers
never need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.algorithms.bini import bini322_algorithm
from repro.algorithms.classical import classical_algorithm
from repro.algorithms.laderman import laderman333_algorithm
from repro.algorithms.smirnov import SurrogateAlgorithm
from repro.algorithms.spec import AlgorithmLike, BilinearAlgorithm
from repro.algorithms.strassen import strassen_algorithm, strassen_winograd_algorithm
from repro.algorithms.transforms import permute, sandwich, stack_m, tensor_product

__all__ = [
    "get_algorithm",
    "list_algorithms",
    "TABLE1",
    "Table1Row",
    "PAPER_ALGORITHMS",
    "AlgorithmProperties",
    "EXPECTED_PROPERTIES",
]


# ----------------------------------------------------------------------
# real constructions
# ----------------------------------------------------------------------


def _bini232() -> BilinearAlgorithm:
    return permute(bini322_algorithm(), (1, 0, 2), name="bini232")


def _bini223() -> BilinearAlgorithm:
    return permute(bini322_algorithm(), (1, 2, 0), name="bini223")


def _dps222() -> BilinearAlgorithm:
    """Accuracy-optimal Strassen variant (Dumas–Pernet–Sedoglavic).

    arXiv 2402.05630 shows Strassen's rank-7 scheme has a basis-change
    (de Groote) orbit, and picks the orbit element minimizing the
    coefficient growth factor ``||U||_F ||V||_F ||W||_F`` that governs
    accumulated roundoff: Strassen's published coefficients give
    ``sqrt(1728) ~ 41.57``; the optimum over dyadic-rational basis
    changes is ``sqrt(531441/512) ~ 32.22 = (81/8)^(3/2)``.

    Deviation (cf. the smirnov444 precedent in ROADMAP item 3): the
    paper's published coefficient tables are not recoverable in this
    offline environment, so the entry is derived here — a hill-climb
    over dyadic sandwich triples converges to the growth optimum from
    every restart, and the triple below is the balanced representative
    of that optimum (each factor normalized to ``||.||_F^2 = 81/8``,
    entries in ``{±1, ±1/2, ±1/4}``).  ``repro lint`` re-derives
    (sigma, phi, rank, speedup) symbolically like any other entry, and
    the growth ordering vs Strassen is pinned exactly in the tests.
    """
    X = ((1, "1/2"), (0, 1))
    Y = ((1, "-1/2"), (0, 1))
    Z = ((1, "-1/2"), (0, 1))
    from fractions import Fraction

    as_fr = lambda M: tuple(tuple(Fraction(x) for x in row) for row in M)
    return sandwich(strassen_algorithm(), as_fr(X), as_fr(Y), as_fr(Z),
                    name="dps222")


def _strassen_squared() -> BilinearAlgorithm:
    return tensor_product(
        strassen_algorithm(), strassen_algorithm(), name="strassen444"
    )


def _bini_x_strassen() -> BilinearAlgorithm:
    return tensor_product(
        bini322_algorithm(), strassen_algorithm(), name="bini322xstrassen"
    )


def _bini_x_bini() -> BilinearAlgorithm:
    return tensor_product(bini322_algorithm(), bini322_algorithm(), name="bini322sq")


def _pad422() -> BilinearAlgorithm:
    return tensor_product(
        classical_algorithm(2, 1, 1), strassen_algorithm(), name="strassen422"
    )


def _bini_stack522() -> BilinearAlgorithm:
    return stack_m(bini322_algorithm(), strassen_algorithm(), name="bini522")


def _laderman_x_strassen() -> BilinearAlgorithm:
    return tensor_product(
        laderman333_algorithm(), strassen_algorithm(), name="laderman333xstrassen"
    )


def _strassen_cubed() -> BilinearAlgorithm:
    return tensor_product(
        strassen_algorithm(), _strassen_squared(), name="strassen888"
    )


def _bini_x_strassen444() -> BilinearAlgorithm:
    return tensor_product(
        bini322_algorithm(), _strassen_squared(), name="bini322xstrassen444"
    )


_REAL_FACTORIES: dict[str, Callable[[], AlgorithmLike]] = {
    "classical222": lambda: classical_algorithm(2, 2, 2),
    "classical333": lambda: classical_algorithm(3, 3, 3),
    "strassen222": strassen_algorithm,
    "winograd222": strassen_winograd_algorithm,
    # <2,2,2>:7 exact — Dumas–Pernet–Sedoglavic accuracy-optimal
    # Strassen variant (arXiv 2402.05630): minimal coefficient growth
    # over the basis-change orbit (sqrt(531441/512) vs Strassen's
    # sqrt(1728))
    "dps222": _dps222,
    "bini322": bini322_algorithm,
    "bini232": _bini232,
    "bini223": _bini223,
    # <3,3,3>:23 exact — Laderman 1976, the rank-23 scheme revisited by
    # arXiv 2508.03857 (60 additions); 17% per recursion step
    "laderman333": laderman333_algorithm,
    # <6,6,6>:161 exact — Laderman (x) Strassen (34%)
    "laderman333xstrassen": _laderman_x_strassen,
    # <4,4,4>:49 exact — Strassen applied twice in one rule
    "strassen444": _strassen_squared,
    # <6,4,4>:70 APA, phi=1 — Bini (x) Strassen
    "bini322xstrassen": _bini_x_strassen,
    # <9,4,4>:100 APA, phi=2 — Bini (x) Bini (auto-graded tensor product)
    "bini322sq": _bini_x_bini,
    # <4,2,2>:14 exact — <2,1,1> (x) Strassen
    "strassen422": _pad422,
    # <5,2,2>:17 APA — Bini stacked on Strassen rows
    "bini522": _bini_stack522,
    # <8,8,8>:343 exact — Strassen applied three times in one rule (49%)
    "strassen888": _strassen_cubed,
    # <12,8,8>:490 APA, phi=1 — the strongest fully-coefficiented rule in
    # the catalog: 57% theoretical speedup at Bini's 3.5e-4 error floor
    "bini322xstrassen444": _bini_x_strassen444,
}


# ----------------------------------------------------------------------
# surrogate constructions (paper Table 1 rows with unavailable coefficients)
# ----------------------------------------------------------------------

_SURROGATE_SPECS: dict[str, dict] = {
    "alekseev422": dict(m=4, n=2, k=2, _rank=13, _phi=2,
                        ref="[1] Alekseev & Smirnov 2013"),
    "smirnov332": dict(m=3, n=3, k=2, _rank=14, _phi=3, ref="[25] Smirnov 2013"),
    "smirnov522": dict(m=5, n=2, k=2, _rank=16, _phi=3, ref="[25] Smirnov 2013"),
    "smirnov333": dict(m=3, n=3, k=3, _rank=20, _phi=6, ref="[25] Smirnov 2013"),
    "schonhage333": dict(m=3, n=3, k=3, _rank=21, _phi=2,
                         ref="[23] Schönhage 1981"),
    "smirnov722": dict(m=7, n=2, k=2, _rank=22, _phi=5, error_prefactor=0.25,
                       ref="[27] Smirnov 2015"),
    "smirnov442": dict(m=4, n=4, k=2, _rank=24, _phi=3, ref="[29] Smirnov 2016"),
    "smirnov433": dict(m=4, n=3, k=3, _rank=27, _phi=3, ref="[28] Smirnov 2016"),
    "smirnov552": dict(m=5, n=5, k=2, _rank=37, _phi=3, ref="[29] Smirnov 2016"),
    "smirnov444": dict(m=4, n=4, k=4, _rank=46, _phi=3, ref="[26] Smirnov 2014"),
    "smirnov555": dict(m=5, n=5, k=5, _rank=90, _phi=3, error_prefactor=0.25,
                       ref="[30] Smirnov 2018"),
}


def _surrogate_factory(name: str) -> Callable[[], AlgorithmLike]:
    spec = _SURROGATE_SPECS[name]

    def build() -> AlgorithmLike:
        return SurrogateAlgorithm(
            name=name,
            source="surrogate from Table-1 metadata (see DESIGN.md §2)",
            **spec,
        )

    return build


_FACTORIES: dict[str, Callable[[], AlgorithmLike]] = dict(_REAL_FACTORIES)
for _name in _SURROGATE_SPECS:
    _FACTORIES[_name] = _surrogate_factory(_name)

_CACHE: dict[str, AlgorithmLike] = {}


def get_algorithm(name: str) -> AlgorithmLike:
    """Resolve a catalog name to an (cached) algorithm instance.

    Raises ``KeyError`` with the available names when unknown.
    """
    if name not in _FACTORIES:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {sorted(_FACTORIES)}"
        )
    if name not in _CACHE:
        _CACHE[name] = _FACTORIES[name]()
    return _CACHE[name]


def list_algorithms(kind: str = "all") -> list[str]:
    """Names in the catalog, optionally filtered.

    ``kind`` is one of ``'all'``, ``'real'`` (full coefficients),
    ``'surrogate'``, ``'apa'``, ``'exact'``, ``'table1'`` (the paper's
    evaluation set, in table order).
    """
    if kind == "all":
        return sorted(_FACTORIES)
    if kind == "real":
        return sorted(_REAL_FACTORIES)
    if kind == "surrogate":
        return sorted(_SURROGATE_SPECS)
    if kind == "table1":
        return [row.name for row in TABLE1]
    if kind in ("apa", "exact"):
        names = []
        for name in sorted(_FACTORIES):
            alg = get_algorithm(name)
            if (kind == "apa") == (not alg.is_exact):
                names.append(name)
        return names
    raise ValueError(f"unknown kind {kind!r}")


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table 1 (expected values, for assertions)."""

    ref: str
    name: str
    dims: tuple[int, int, int]
    rank: int
    speedup_percent: int | None  # None for the classical row ("-")
    sigma: int
    phi: int
    error: float  # at d=23, one recursive step


TABLE1: tuple[Table1Row, ...] = (
    Table1Row("-", "classical222", (2, 2, 2), 8, None, 1, 0, 1.2e-7),
    Table1Row("[6]", "bini322", (3, 2, 2), 10, 20, 1, 1, 3.5e-4),
    Table1Row("[1]", "alekseev422", (4, 2, 2), 13, 23, 1, 2, 4.9e-3),
    Table1Row("[25]", "smirnov332", (3, 3, 2), 14, 29, 1, 3, 1.9e-2),
    Table1Row("[25]", "smirnov522", (5, 2, 2), 16, 25, 1, 3, 1.9e-2),
    Table1Row("[25]", "smirnov333", (3, 3, 3), 20, 35, 1, 6, 1.0e-1),
    Table1Row("[23]", "schonhage333", (3, 3, 3), 21, 29, 1, 2, 4.9e-3),
    Table1Row("[27]", "smirnov722", (7, 2, 2), 22, 27, 1, 5, 7.0e-2),
    Table1Row("[29]", "smirnov442", (4, 4, 2), 24, 33, 1, 3, 1.9e-2),
    Table1Row("[28]", "smirnov433", (4, 3, 3), 27, 33, 1, 3, 1.9e-2),
    Table1Row("[29]", "smirnov552", (5, 5, 2), 37, 35, 1, 3, 1.9e-2),
    Table1Row("[26]", "smirnov444", (4, 4, 4), 46, 39, 1, 3, 1.9e-2),
    Table1Row("[30]", "smirnov555", (5, 5, 5), 90, 39, 1, 3, 1.9e-2),
)

#: The algorithm set used throughout the paper's evaluation figures
#: (every Table-1 row except the classical baseline).
PAPER_ALGORITHMS: tuple[str, ...] = tuple(row.name for row in TABLE1[1:])


# ----------------------------------------------------------------------
# Expected derived properties (the static-verification contract)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AlgorithmProperties:
    """Pinned ``(dims, rank, sigma, phi, speedup)`` for one catalog entry.

    ``repro lint`` re-derives these from the Laurent coefficient tensors
    (real algorithms) or the stored surrogate metadata and flags any
    disagreement (rule ``APA001``).  ``sigma`` follows the repo
    convention: 0 for exact algorithms (the paper's Table 1 writes 1 for
    the classical row; the checker maps between the two).
    ``speedup_percent`` is ``round((m*n*k / r - 1) * 100)``.
    """

    dims: tuple[int, int, int]
    rank: int
    sigma: int
    phi: int
    speedup_percent: int


#: Every catalog name with the values an audit of the coefficient
#: tensors must reproduce.  A 2026 audit of the seed catalog derived
#: exactly these numbers — no stored entry disagreed — and the table now
#: pins them against regressions (transcription defects like the Bini
#: M10 OCR bug change these values and are caught by ``repro lint``).
EXPECTED_PROPERTIES: dict[str, AlgorithmProperties] = {
    # real, exact
    "classical222": AlgorithmProperties((2, 2, 2), 8, 0, 0, 0),
    "classical333": AlgorithmProperties((3, 3, 3), 27, 0, 0, 0),
    "strassen222": AlgorithmProperties((2, 2, 2), 7, 0, 0, 14),
    "winograd222": AlgorithmProperties((2, 2, 2), 7, 0, 0, 14),
    "dps222": AlgorithmProperties((2, 2, 2), 7, 0, 0, 14),
    "laderman333": AlgorithmProperties((3, 3, 3), 23, 0, 0, 17),
    "laderman333xstrassen": AlgorithmProperties((6, 6, 6), 161, 0, 0, 34),
    "strassen422": AlgorithmProperties((4, 2, 2), 14, 0, 0, 14),
    "strassen444": AlgorithmProperties((4, 4, 4), 49, 0, 0, 31),
    "strassen888": AlgorithmProperties((8, 8, 8), 343, 0, 0, 49),
    # real, APA
    "bini322": AlgorithmProperties((3, 2, 2), 10, 1, 1, 20),
    "bini232": AlgorithmProperties((2, 3, 2), 10, 1, 1, 20),
    "bini223": AlgorithmProperties((2, 2, 3), 10, 1, 1, 20),
    "bini522": AlgorithmProperties((5, 2, 2), 17, 1, 1, 18),
    "bini322xstrassen": AlgorithmProperties((6, 4, 4), 70, 1, 1, 37),
    "bini322sq": AlgorithmProperties((9, 4, 4), 100, 1, 2, 44),
    "bini322xstrassen444": AlgorithmProperties((12, 8, 8), 490, 1, 1, 57),
    # surrogates (Table-1 metadata; sigma = 1 for all published rules)
    "alekseev422": AlgorithmProperties((4, 2, 2), 13, 1, 2, 23),
    "smirnov332": AlgorithmProperties((3, 3, 2), 14, 1, 3, 29),
    "smirnov522": AlgorithmProperties((5, 2, 2), 16, 1, 3, 25),
    "smirnov333": AlgorithmProperties((3, 3, 3), 20, 1, 6, 35),
    "schonhage333": AlgorithmProperties((3, 3, 3), 21, 1, 2, 29),
    "smirnov722": AlgorithmProperties((7, 2, 2), 22, 1, 5, 27),
    "smirnov442": AlgorithmProperties((4, 4, 2), 24, 1, 3, 33),
    "smirnov433": AlgorithmProperties((4, 3, 3), 27, 1, 3, 33),
    "smirnov552": AlgorithmProperties((5, 5, 2), 37, 1, 3, 35),
    "smirnov444": AlgorithmProperties((4, 4, 4), 46, 1, 3, 39),
    "smirnov555": AlgorithmProperties((5, 5, 5), 90, 1, 3, 39),
}
