"""Exact symbolic verification of bilinear algorithms.

Given an algorithm's triplets ``(U, V, W)``, we form the Laurent-valued
tensor

    S[p, s, q](lambda) = sum_i U[p, i] * V[s, i] * W[q, i]

and compare against the exact matmul tensor ``T``.  A valid APA algorithm
(paper eq. (1)) satisfies, entrywise,

    S = T + lambda**sigma * E + (higher powers of lambda)

with **no negative powers surviving** the contraction (negative powers in
individual coefficients must cancel — that cancellation is exactly what
makes APA algorithms numerically delicate, quantified by ``phi``).

The verifier is exact (rational arithmetic), so a passing report is a proof
that the rule is a correct (approximate) matrix-multiplication algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.spec import BilinearAlgorithm
from repro.linalg.laurent import Laurent
from repro.linalg.tensor import matmul_tensor, triple_product_tensor

__all__ = ["VerificationReport", "verify_algorithm", "assert_valid"]


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of symbolically verifying one algorithm.

    Attributes
    ----------
    valid:
        True when the contraction reproduces ``T`` at ``lambda**0`` with no
        surviving negative powers.
    is_exact:
        True when the contraction equals ``T`` identically (error
        polynomial is zero) — e.g. classical, Strassen.
    sigma:
        Smallest positive lambda-exponent carrying error (0 for exact
        algorithms, by convention).
    max_error_exponent:
        Largest lambda-exponent appearing in the error polynomial
        (0 for exact algorithms).
    error_leading:
        The leading error tensor ``E`` (object array of Fractions shaped
        like ``T``); ``None`` for exact algorithms.
    failures:
        Human-readable descriptions of each violated condition (empty when
        valid).
    """

    valid: bool
    is_exact: bool
    sigma: int
    max_error_exponent: int
    error_leading: np.ndarray | None
    failures: tuple[str, ...]

    def summary(self) -> str:
        status = "EXACT" if self.is_exact else (
            f"APA sigma={self.sigma}" if self.valid else "INVALID"
        )
        text = status
        if self.failures:
            text += " — " + "; ".join(self.failures[:5])
            if len(self.failures) > 5:
                text += f" (+{len(self.failures) - 5} more)"
        return text


def verify_algorithm(alg: BilinearAlgorithm) -> VerificationReport:
    """Symbolically verify a :class:`BilinearAlgorithm`.

    Also back-fills the algorithm's cached ``sigma`` / exactness so
    subsequent property access is free.
    """
    m, n, k = alg.m, alg.n, alg.k
    T = matmul_tensor(m, n, k)
    S = triple_product_tensor(alg.U, alg.V, alg.W)

    failures: list[str] = []
    sigma: int | None = None
    max_exp = 0
    error_entries: dict[tuple[int, int, int], Laurent] = {}

    for idx in np.ndindex(S.shape):
        diff = S[idx] - Laurent.const(int(T[idx]))
        if diff.is_zero():
            continue
        lo = diff.min_exponent()
        hi = diff.max_exponent()
        if lo <= 0:
            # Either negative powers survived, or the lambda**0 term does
            # not match T — both are hard failures.
            const = diff.coeff(0)
            if lo < 0:
                failures.append(
                    f"entry {idx}: uncancelled lambda**{lo} term {diff.coeff(lo)}"
                )
            if const:
                failures.append(
                    f"entry {idx}: lambda**0 term off by {const} from T={int(T[idx])}"
                )
            # When lo <= 0 but all offending terms were reported, positive
            # part may still exist; track it for completeness.
            pos = [e for e in diff.terms if e > 0]
            if pos:
                sigma = min(sigma, min(pos)) if sigma is not None else min(pos)
                max_exp = max(max_exp, max(pos))
            continue
        sigma = lo if sigma is None else min(sigma, lo)
        max_exp = max(max_exp, hi)
        error_entries[idx] = diff

    valid = not failures
    is_exact = valid and sigma is None

    error_leading = None
    if valid and not is_exact:
        error_leading = np.empty(S.shape, dtype=object)
        error_leading[...] = 0
        for idx, diff in error_entries.items():
            error_leading[idx] = diff.coeff(sigma)

    report = VerificationReport(
        valid=valid,
        is_exact=is_exact,
        sigma=0 if is_exact else (sigma or 0),
        max_error_exponent=max_exp,
        error_leading=error_leading,
        failures=tuple(failures),
    )

    # Back-fill the algorithm's caches (best effort — surrogates and
    # foreign objects without the private fields are left alone).
    if valid and hasattr(alg, "_sigma"):
        alg._sigma = report.sigma
        alg._exact = report.is_exact
    return report


def assert_valid(alg: BilinearAlgorithm) -> VerificationReport:
    """Verify and raise ``ValueError`` with details when invalid."""
    report = verify_algorithm(alg)
    if not report.valid:
        raise ValueError(
            f"algorithm {alg.name!r} {alg.signature()} failed verification: "
            + report.summary()
        )
    return report
