"""Laderman's exact ⟨3,3,3⟩:23 algorithm (60 additions in the rank-23
class; arXiv 2508.03857 revisits this scheme and shows 23 is the best
known rank for 3×3 — the catalog carries it as the repo's rank-23 exact
⟨3,3,3⟩ entry).

Transcribed from Laderman, "A noncommutative algorithm for multiplying
3×3 matrices using 23 multiplications", Bull. AMS 82 (1976), in the same
paper-style combination form as :mod:`repro.algorithms.bini` so the
symbolic verifier re-derives (σ, φ, rank, speedup) = (0, 0, 23, 17)
from the coefficients themselves.

All coefficients are ±1 (no λ): the scheme is exact, so ``phi == 0``
and ``verify_algorithm`` must find a zero residual at order 0.
"""

from __future__ import annotations

from repro.algorithms.dsl import rule_to_algorithm
from repro.algorithms.spec import BilinearAlgorithm

__all__ = ["laderman333_algorithm"]

_SOURCE = (
    "Laderman 1976, Bull. AMS 82(1):126-128; rank-23 exact <3,3,3> "
    "(cf. arXiv 2508.03857 for the 60-addition form)"
)


def laderman333_algorithm() -> BilinearAlgorithm:
    """Laderman's exact ⟨3,3,3⟩ rule with 23 multiplications.

    Speedup over classical: ``round((27/23 - 1) * 100) = 17`` percent
    per recursion step; exact, so it composes with any error budget.
    """
    a = [
        # m1 = (a11 + a12 + a13 - a21 - a22 - a32 - a33) * b22
        {(0, 0): 1, (0, 1): 1, (0, 2): 1, (1, 0): -1, (1, 1): -1,
         (2, 1): -1, (2, 2): -1},
        # m2 = (a11 - a21) * (-b12 + b22)
        {(0, 0): 1, (1, 0): -1},
        # m3 = a22 * (-b11 + b12 + b21 - b22 - b23 - b31 + b33)
        {(1, 1): 1},
        # m4 = (-a11 + a21 + a22) * (b11 - b12 + b22)
        {(0, 0): -1, (1, 0): 1, (1, 1): 1},
        # m5 = (a21 + a22) * (-b11 + b12)
        {(1, 0): 1, (1, 1): 1},
        # m6 = a11 * b11
        {(0, 0): 1},
        # m7 = (-a11 + a31 + a32) * (b11 - b13 + b23)
        {(0, 0): -1, (2, 0): 1, (2, 1): 1},
        # m8 = (-a11 + a31) * (b13 - b23)
        {(0, 0): -1, (2, 0): 1},
        # m9 = (a31 + a32) * (-b11 + b13)
        {(2, 0): 1, (2, 1): 1},
        # m10 = (a11 + a12 + a13 - a22 - a23 - a31 - a32) * b23
        {(0, 0): 1, (0, 1): 1, (0, 2): 1, (1, 1): -1, (1, 2): -1,
         (2, 0): -1, (2, 1): -1},
        # m11 = a32 * (-b11 + b13 + b21 - b22 - b23 - b31 + b32)
        {(2, 1): 1},
        # m12 = (-a13 + a32 + a33) * (b22 + b31 - b32)
        {(0, 2): -1, (2, 1): 1, (2, 2): 1},
        # m13 = (a13 - a33) * (b22 - b32)
        {(0, 2): 1, (2, 2): -1},
        # m14 = a13 * b31
        {(0, 2): 1},
        # m15 = (a32 + a33) * (-b31 + b32)
        {(2, 1): 1, (2, 2): 1},
        # m16 = (-a13 + a22 + a23) * (b23 + b31 - b33)
        {(0, 2): -1, (1, 1): 1, (1, 2): 1},
        # m17 = (a13 - a23) * (b23 - b33)
        {(0, 2): 1, (1, 2): -1},
        # m18 = (a22 + a23) * (-b31 + b33)
        {(1, 1): 1, (1, 2): 1},
        # m19 = a12 * b21
        {(0, 1): 1},
        # m20 = a23 * b32
        {(1, 2): 1},
        # m21 = a21 * b13
        {(1, 0): 1},
        # m22 = a31 * b12
        {(2, 0): 1},
        # m23 = a33 * b33
        {(2, 2): 1},
    ]
    b = [
        {(1, 1): 1},                                         # m1
        {(0, 1): -1, (1, 1): 1},                             # m2
        {(0, 0): -1, (0, 1): 1, (1, 0): 1, (1, 1): -1,
         (1, 2): -1, (2, 0): -1, (2, 2): 1},                 # m3
        {(0, 0): 1, (0, 1): -1, (1, 1): 1},                  # m4
        {(0, 0): -1, (0, 1): 1},                             # m5
        {(0, 0): 1},                                         # m6
        {(0, 0): 1, (0, 2): -1, (1, 2): 1},                  # m7
        {(0, 2): 1, (1, 2): -1},                             # m8
        {(0, 0): -1, (0, 2): 1},                             # m9
        {(1, 2): 1},                                         # m10
        {(0, 0): -1, (0, 2): 1, (1, 0): 1, (1, 1): -1,
         (1, 2): -1, (2, 0): -1, (2, 1): 1},                 # m11
        {(1, 1): 1, (2, 0): 1, (2, 1): -1},                  # m12
        {(1, 1): 1, (2, 1): -1},                             # m13
        {(2, 0): 1},                                         # m14
        {(2, 0): -1, (2, 1): 1},                             # m15
        {(1, 2): 1, (2, 0): 1, (2, 2): -1},                  # m16
        {(1, 2): 1, (2, 2): -1},                             # m17
        {(2, 0): -1, (2, 2): 1},                             # m18
        {(1, 0): 1},                                         # m19
        {(2, 1): 1},                                         # m20
        {(0, 2): 1},                                         # m21
        {(0, 1): 1},                                         # m22
        {(2, 2): 1},                                         # m23
    ]
    c = {
        # c11 = m6 + m14 + m19
        (0, 0): {5: 1, 13: 1, 18: 1},
        # c12 = m1 + m4 + m5 + m6 + m12 + m14 + m15
        (0, 1): {0: 1, 3: 1, 4: 1, 5: 1, 11: 1, 13: 1, 14: 1},
        # c13 = m6 + m7 + m9 + m10 + m14 + m16 + m18
        (0, 2): {5: 1, 6: 1, 8: 1, 9: 1, 13: 1, 15: 1, 17: 1},
        # c21 = m2 + m3 + m4 + m6 + m14 + m16 + m17
        (1, 0): {1: 1, 2: 1, 3: 1, 5: 1, 13: 1, 15: 1, 16: 1},
        # c22 = m2 + m4 + m5 + m6 + m20
        (1, 1): {1: 1, 3: 1, 4: 1, 5: 1, 19: 1},
        # c23 = m14 + m16 + m17 + m18 + m21
        (1, 2): {13: 1, 15: 1, 16: 1, 17: 1, 20: 1},
        # c31 = m6 + m7 + m8 + m11 + m12 + m13 + m14
        (2, 0): {5: 1, 6: 1, 7: 1, 10: 1, 11: 1, 12: 1, 13: 1},
        # c32 = m12 + m13 + m14 + m15 + m22
        (2, 1): {11: 1, 12: 1, 13: 1, 14: 1, 21: 1},
        # c33 = m6 + m7 + m8 + m9 + m23
        (2, 2): {5: 1, 6: 1, 7: 1, 8: 1, 22: 1},
    }
    return rule_to_algorithm("laderman333", 3, 3, 3, a, b, c, source=_SOURCE)
