"""Per-algorithm analytics: everything a user wants to know in one report.

Collects, for any catalog entry, the quantities that decide whether to
use it: dims/rank/speedup, error parameters and floors per precision,
coefficient sparsity, naive vs CSE-optimized addition counts, workspace
overhead, and the sequential crossover dimension on the modelled machine.
Feeds the CLI ``info`` command and the catalog report table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from repro.algorithms.spec import AlgorithmLike
from repro.bench.tables import format_table

__all__ = [
    "AlgorithmReport",
    "analyze_algorithm",
    "catalog_report",
    "frobenius_growth",
    "growth_product_squared",
    "predicted_error_bound",
]


def predicted_error_bound(
    algorithm: AlgorithmLike | str | None = None,
    d: int = 23,
    steps: int = 1,
    inner_dim: int = 1,
) -> float:
    """Predicted relative error of one product — the guard's yardstick.

    For an APA/exact algorithm this is its analytic floor
    :meth:`~repro.algorithms.spec.Algorithm.error_bound`, never below the
    classical forward-error growth ``inner_dim * 2**-d`` that any gemm
    over ``inner_dim``-long dot products accrues.  With no algorithm
    (classical gemm) only the growth term remains.  Runtime health checks
    compare a measured residual against a small multiple of this value.
    """
    if d <= 0:
        raise ValueError("precision bits d must be positive")
    if inner_dim < 1:
        raise ValueError("inner_dim must be >= 1")
    classical = inner_dim * 2.0**-d
    if algorithm is None:
        return classical
    if isinstance(algorithm, str):
        from repro.algorithms.catalog import get_algorithm

        algorithm = get_algorithm(algorithm)
    return max(algorithm.error_bound(d=d, steps=steps), classical)


def growth_product_squared(
    algorithm: AlgorithmLike | str, lam: Fraction | int = 1
) -> Fraction:
    """Exact squared Frobenius growth product ``(||U|| ||V|| ||W||)^2``.

    The coefficient-growth measure Dumas–Pernet–Sedoglavic (arXiv
    2402.05630) minimize over the basis-change orbit of a rule: the
    accumulated roundoff of a recursive bilinear algorithm scales with
    the magnitude of its coefficients, and the product of factor
    Frobenius norms is the orbit-optimizable proxy for it (Strassen's
    published coefficients give ``1728``; the accuracy-optimal variant
    reaches ``531441/512``).  Returned as the *squared* product so the
    comparison stays exact rational; Laurent entries are evaluated at
    ``lam`` (default 1, i.e. the nominal coefficient including every
    order of the APA perturbation).
    """
    if isinstance(algorithm, str):
        from repro.algorithms.catalog import get_algorithm

        algorithm = get_algorithm(algorithm)
    if algorithm.is_surrogate:
        raise ValueError(
            f"{algorithm.name!r} is a surrogate; growth needs coefficients")
    lam = Fraction(lam)
    product = Fraction(1)
    for M in (algorithm.U, algorithm.V, algorithm.W):
        sq = Fraction(0)
        for entry in M.flat:
            if entry and not entry.is_zero():
                sq += entry.evaluate_exact(lam) ** 2
        product *= sq
    return product


def frobenius_growth(algorithm: AlgorithmLike | str,
                     lam: Fraction | int = 1) -> float:
    """``||U||_F * ||V||_F * ||W||_F`` as a float (see
    :func:`growth_product_squared` for the exact squared value)."""
    return math.sqrt(float(growth_product_squared(algorithm, lam=lam)))


@dataclass(frozen=True)
class AlgorithmReport:
    name: str
    signature: str
    is_exact: bool
    is_surrogate: bool
    speedup_percent: float
    sigma: int
    phi: int
    error_f32: float
    error_f64: float
    nnz: tuple[int, int, int]
    additions_naive: int
    additions_cse: int | None  # None for surrogates (no coefficients)
    workspace_overhead: float  # x classical footprint at n=4096
    crossover_seq: int | None

    def describe(self) -> str:
        lines = [
            f"{self.name} {self.signature}"
            + (" [exact]" if self.is_exact else "")
            + (" [surrogate]" if self.is_surrogate else ""),
            f"  ideal speedup : {self.speedup_percent:.0f}% per step",
            f"  error params  : sigma={self.sigma} phi={self.phi}",
            f"  error floors  : {self.error_f32:.1e} (f32), "
            f"{self.error_f64:.1e} (f64)",
            f"  nonzeros      : U={self.nnz[0]} V={self.nnz[1]} W={self.nnz[2]}",
            f"  additions     : {self.additions_naive} naive"
            + (f", {self.additions_cse} with CSE"
               if self.additions_cse is not None else " (modelled)"),
            f"  workspace     : +{self.workspace_overhead * 100:.0f}% of the "
            "classical footprint (n=4096, 1 step)",
            "  seq crossover : "
            + (f"n ~ {self.crossover_seq}" if self.crossover_seq
               else "never below 32768"),
        ]
        return "\n".join(lines)


def analyze_algorithm(algorithm: AlgorithmLike | str, crossover: bool = True,
                      cse_max_rank: int = 200) -> AlgorithmReport:
    """Build the full report for one algorithm (catalog object or name).

    CSE is greedy-quadratic in the coefficient count, so it is skipped
    (reported as ``None``) above ``cse_max_rank`` — run it explicitly via
    :mod:`repro.codegen.cse` for the XL tensor-product rules.
    """
    if isinstance(algorithm, str):
        from repro.algorithms.catalog import get_algorithm

        algorithm = get_algorithm(algorithm)

    from repro.core.memory import workspace_bytes

    additions_cse = None
    if not algorithm.is_surrogate and algorithm.rank <= cse_max_rank:
        from repro.codegen.cse import eliminate_common_subexpressions

        additions_cse = (
            eliminate_common_subexpressions(algorithm.U).additions
            + eliminate_common_subexpressions(algorithm.V).additions
            + eliminate_common_subexpressions(algorithm.W.T).additions
        )

    au, av, aw = algorithm.addition_counts()
    est = workspace_bytes(algorithm, 4096, 4096, 4096)

    crossover_n = None
    if crossover:
        from repro.parallel.autotune import crossover_dimension

        crossover_n = crossover_dimension(algorithm.name, threads=1)

    sigma = 1 if algorithm.is_exact else algorithm.sigma
    return AlgorithmReport(
        name=algorithm.name,
        signature=algorithm.signature(),
        is_exact=algorithm.is_exact,
        is_surrogate=algorithm.is_surrogate,
        speedup_percent=algorithm.speedup_percent,
        sigma=sigma,
        phi=algorithm.phi,
        error_f32=algorithm.error_bound(d=23),
        error_f64=algorithm.error_bound(d=52),
        nnz=algorithm.nnz(),
        additions_naive=au + av + aw,
        additions_cse=additions_cse,
        workspace_overhead=est.overhead_vs_classical(4096, 4096, 4096),
        crossover_seq=crossover_n,
    )


def catalog_report(names: list[str] | None = None,
                   crossover: bool = False) -> str:
    """One-row-per-algorithm summary table of the whole catalog."""
    from repro.algorithms.catalog import list_algorithms

    names = names or list_algorithms("all")
    rows = []
    for name in names:
        r = analyze_algorithm(name, crossover=crossover)
        rows.append([
            r.name, r.signature, f"{r.speedup_percent:.0f}%",
            r.sigma, r.phi, f"{r.error_f32:.0e}",
            r.additions_naive,
            r.additions_cse if r.additions_cse is not None else "-",
            "surrogate" if r.is_surrogate else
            ("exact" if r.is_exact else "APA"),
        ])
    return format_table(
        ["name", "dims:rank", "speedup", "sigma", "phi", "err@f32",
         "adds", "adds(CSE)", "kind"],
        rows, title="Catalog report",
    )
