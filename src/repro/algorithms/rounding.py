"""Turn numerical ALS factors into exact, verified algorithms.

ALS (:mod:`repro.algorithms.search`) produces *floating-point* factor
matrices.  Published fast algorithms have small rational coefficients, so
a converged ALS solution usually sits near an exact one; this module
recovers it:

1. :func:`normalize_factors` rescales each rank-1 term so its largest
   ``U``/``V`` coefficients are +-1 (the scale freedom
   ``(aU) x (bV) x (W/(ab))`` is fixed arbitrarily by ALS);
2. :func:`round_factors` snaps every coefficient to the nearest small
   rational from a menu (0, +-1, +-1/2, ...);
3. :func:`factors_to_algorithm` packages the snapped factors as a
   :class:`~repro.algorithms.spec.BilinearAlgorithm` and runs the exact
   symbolic verifier — only a *proof-carrying* algorithm is returned.

Caveat (and why Smirnov's papers spend most of their effort here): the
matmul tensor has a large continuous symmetry group — any
``(P, Q, R) in GL x GL x GL`` acting on the three factor modes maps a
decomposition to another decomposition — so a *generic* converged ALS run
lands on a random orbit point with irrational-looking coefficients.
Rounding then correctly refuses.  Recovering a rational representative
requires an orbit-sparsification search, which is out of scope; the
pipeline certifies solutions that are already near a rational point
(e.g. ALS runs warm-started there, or hand-perturbed published factors)
and is exercised that way in the tests.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.algorithms.search import ALSResult
from repro.algorithms.spec import BilinearAlgorithm, coeff_matrix
from repro.algorithms.verify import verify_algorithm
from repro.linalg.laurent import Laurent

__all__ = [
    "DEFAULT_MENU",
    "normalize_factors",
    "round_factors",
    "factors_to_algorithm",
    "als_to_algorithm",
]

#: Coefficient values seen in published exact algorithms.
DEFAULT_MENU: tuple[Fraction, ...] = tuple(
    Fraction(n, d) for n in (-4, -3, -2, -1, 0, 1, 2, 3, 4) for d in (1, 2, 4)
)


def normalize_factors(
    U: np.ndarray, V: np.ndarray, W: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fix the per-column scale freedom of a CP decomposition.

    Each column ``t`` is rescaled so that ``max|U[:, t]| = max|V[:, t]| = 1``
    with the compensating scale pushed into ``W`` — after which exact
    algorithms with +-1-dominated combinations (Strassen, Bini, ...) have
    coefficients on the rational menu.
    """
    U, V, W = U.copy(), V.copy(), W.copy()
    for t in range(U.shape[1]):
        su = np.abs(U[:, t]).max()
        sv = np.abs(V[:, t]).max()
        if su == 0 or sv == 0:
            continue
        U[:, t] /= su
        V[:, t] /= sv
        W[:, t] *= su * sv
    return U, V, W


def round_factors(
    U: np.ndarray,
    V: np.ndarray,
    W: np.ndarray,
    menu: tuple[Fraction, ...] = DEFAULT_MENU,
    tolerance: float = 0.12,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Snap every coefficient to the nearest menu rational.

    Raises ``ValueError`` when any coefficient is farther than
    ``tolerance`` from every menu value — the factors are then not close
    enough to an exact algorithm to certify.
    """
    menu_f = np.array([float(q) for q in menu])

    def snap(M: np.ndarray) -> np.ndarray:
        out = np.empty(M.shape, dtype=object)
        for idx, value in np.ndenumerate(M):
            j = int(np.argmin(np.abs(menu_f - value)))
            if abs(menu_f[j] - value) > tolerance:
                raise ValueError(
                    f"coefficient {value:.4f} at {idx} is not within "
                    f"{tolerance} of any menu rational"
                )
            out[idx] = menu[j]
        return out

    return snap(U), snap(V), snap(W)


def factors_to_algorithm(
    U_exact: np.ndarray,
    V_exact: np.ndarray,
    W_exact: np.ndarray,
    m: int,
    n: int,
    k: int,
    name: str = "discovered",
) -> BilinearAlgorithm:
    """Package exact rational factors and *prove* them correct.

    Raises ``ValueError`` (from the verifier) if the snapped factors do
    not decompose the matmul tensor — no unverified algorithm escapes.
    """
    r = U_exact.shape[1]
    U = coeff_matrix(m * n, r)
    V = coeff_matrix(n * k, r)
    W = coeff_matrix(m * k, r)
    for M_out, M_in in ((U, U_exact), (V, V_exact), (W, W_exact)):
        for idx, q in np.ndenumerate(M_in):
            if q:
                M_out[idx] = Laurent.const(q)
    alg = BilinearAlgorithm(
        name=name, m=m, n=n, k=k, U=U, V=V, W=W,
        source="numerically discovered (ALS) and exactly verified",
    )
    report = verify_algorithm(alg)
    if not report.valid or not report.is_exact:
        raise ValueError(
            f"snapped factors do not form an exact algorithm: {report.summary()}"
        )
    return alg


def als_to_algorithm(
    result: ALSResult,
    m: int,
    n: int,
    k: int,
    name: str = "discovered",
    menu: tuple[Fraction, ...] = DEFAULT_MENU,
    tolerance: float = 0.12,
) -> BilinearAlgorithm:
    """Full pipeline: normalize, snap, package, verify."""
    if not result.converged:
        raise ValueError(
            "ALS did not converge; rounding a stalled solution cannot "
            "produce an exact algorithm"
        )
    U, V, W = normalize_factors(result.U, result.V, result.W)
    U_q, V_q, W_q = round_factors(U, V, W, menu=menu, tolerance=tolerance)
    return factors_to_algorithm(U_q, V_q, W_q, m, n, k, name=name)
