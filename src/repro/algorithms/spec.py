"""The :class:`BilinearAlgorithm` container and its derived properties.

An algorithm for dims ``<m, n, k>`` with rank ``r`` is stored as three
object arrays of :class:`~repro.linalg.laurent.Laurent` coefficients:

- ``U`` of shape ``(m*n, r)`` — linear combinations of the entries of ``A``;
- ``V`` of shape ``(n*k, r)`` — linear combinations of the entries of ``B``;
- ``W`` of shape ``(m*k, r)`` — contributions of each product to ``C``.

Column ``i`` of the three matrices is the *triplet* encoding multiplication
``M_i`` (paper eq. (2)).  All indices are row-major.

Derived quantities follow the paper's §2.3/§2.5 definitions exactly:

``phi``
    the largest sum (over the three matrices of a triplet) of the largest
    negative lambda-exponent appearing in that matrix's column;
``sigma``
    smallest positive exponent of the error polynomial (computed by the
    verifier; stored here once known);
``speedup``
    ``(m*n*k / r - 1) * 100`` percent for one recursive step;
``error bound``
    ``2**(-d * sigma / (sigma + s * phi))`` for ``s`` recursive steps in a
    format with ``d`` fractional bits.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np
import numpy.typing as npt

from repro.linalg.laurent import Laurent

__all__ = ["AlgorithmLike", "BilinearAlgorithm", "coeff_matrix"]


def coeff_matrix(
    rows: int,
    cols: int,
    entries: Mapping[tuple[int, int], Laurent | int | float] | None = None,
) -> np.ndarray:
    """Allocate a Laurent-valued coefficient matrix initialized to zero.

    ``entries`` may be a ``{(row, col): Laurent | int | float}`` mapping of
    the nonzeros.
    """
    M = np.empty((rows, cols), dtype=object)
    M[...] = Laurent.zero()
    if entries:
        for (i, j), value in entries.items():
            M[i, j] = value if isinstance(value, Laurent) else Laurent.const(value)
    return M


@runtime_checkable
class AlgorithmLike(Protocol):
    """Common interface shared by true bilinear algorithms and surrogates.

    Everything the execution engine, cost model, and experiment drivers need
    from "an algorithm": its dims, rank, error parameters, and sparsity
    statistics.  :class:`BilinearAlgorithm` satisfies it with real
    coefficients; :class:`repro.core.surrogate.SurrogateAlgorithm`
    satisfies it with paper metadata.
    """

    name: str
    m: int
    n: int
    k: int

    @property
    def rank(self) -> int: ...

    @property
    def sigma(self) -> int: ...

    @property
    def phi(self) -> int: ...

    @property
    def is_exact(self) -> bool: ...

    @property
    def is_surrogate(self) -> bool: ...

    def nnz(self) -> tuple[int, int, int]: ...


def _column_negative_degree(col: Iterable[Laurent]) -> int:
    """Largest negative-exponent magnitude in a coefficient column."""
    worst = 0
    for entry in col:
        if entry:
            worst = max(worst, entry.negative_degree())
    return worst


def _count_nnz(M: np.ndarray) -> int:
    return int(sum(1 for entry in M.flat if entry))


@dataclass
class BilinearAlgorithm:
    """A (possibly approximate) bilinear rule for ``<m, n, k>`` products.

    Instances should be treated as immutable; the factory functions in the
    construction modules are the supported way to build them.

    Attributes
    ----------
    name:
        Catalog key, e.g. ``'bini322'``.
    m, n, k:
        Rule dims (``A`` is ``m x n``, ``B`` is ``n x k``).
    U, V, W:
        Laurent coefficient matrices of shapes ``(m*n, r)``, ``(n*k, r)``,
        ``(m*k, r)``.
    source:
        Bibliographic note (paper reference or construction recipe).
    """

    name: str
    m: int
    n: int
    k: int
    U: np.ndarray
    V: np.ndarray
    W: np.ndarray
    source: str = ""
    _sigma: int | None = field(default=None, repr=False)
    _exact: bool | None = field(default=None, repr=False)
    _phi: int | None = field(default=None, repr=False, compare=False)
    _eval_cache: dict | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        m, n, k = self.m, self.n, self.k
        if min(m, n, k) < 1:
            raise ValueError(f"dims must be positive, got <{m},{n},{k}>")
        r = self.U.shape[1]
        expected = {
            "U": (m * n, r),
            "V": (n * k, r),
            "W": (m * k, r),
        }
        for attr, shape in expected.items():
            M = getattr(self, attr)
            if M.shape != shape:
                raise ValueError(f"{attr} has shape {M.shape}, expected {shape}")
            if M.dtype != object:
                raise TypeError(f"{attr} must be an object array of Laurent")

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------

    @property
    def dims(self) -> tuple[int, int, int]:
        return (self.m, self.n, self.k)

    @property
    def rank(self) -> int:
        """Number of multiplications (columns of the triplet matrices)."""
        return int(self.U.shape[1])

    @property
    def classical_rank(self) -> int:
        return self.m * self.n * self.k

    @property
    def speedup_percent(self) -> float:
        """Ideal single-step speedup ``(mnk/r - 1) * 100`` (paper §2.5)."""
        return (self.classical_rank / self.rank - 1.0) * 100.0

    @property
    def phi(self) -> int:
        """Roundoff exponent: max over triplets of summed negative degrees.

        Paper §2.3: for each triplet, take the largest negative exponent in
        each of the three coefficient matrices and sum the three values;
        ``phi`` is the maximum over triplets.  The value depends only on
        the stored coefficients, so it is computed once and cached.
        """
        if self._phi is not None:
            return self._phi
        worst = 0
        for i in range(self.rank):
            total = (
                _column_negative_degree(self.U[:, i])
                + _column_negative_degree(self.V[:, i])
                + _column_negative_degree(self.W[:, i])
            )
            worst = max(worst, total)
        self._phi = worst
        return worst

    @property
    def sigma(self) -> int:
        """Approximation order (paper §2.3).

        Populated by verification; exact algorithms report a conventional
        ``sigma`` of 0 here meaning "no approximation error" (the paper's
        Table 1 lists sigma=1 for classical but also phi=0, giving error
        bound ``2**-d`` — plain working precision — so the distinction is
        cosmetic; we expose :meth:`error_bound` that handles both).
        """
        if self._sigma is None:
            # Deferred import to avoid a cycle at module import time.
            from repro.algorithms.verify import verify_algorithm

            report = verify_algorithm(self)
            self._sigma = report.sigma
            self._exact = report.is_exact
        return self._sigma

    @property
    def is_exact(self) -> bool:
        """True when the decomposition equals the matmul tensor exactly."""
        if self._exact is None:
            self.sigma  # triggers verification, fills both caches
        return bool(self._exact)

    @property
    def is_apa(self) -> bool:
        return not self.is_exact

    @property
    def is_surrogate(self) -> bool:
        return False

    # ------------------------------------------------------------------
    # sparsity / addition-cost statistics
    # ------------------------------------------------------------------

    def nnz(self) -> tuple[int, int, int]:
        """Nonzero counts of ``(U, V, W)`` — the addition-cost drivers."""
        return (_count_nnz(self.U), _count_nnz(self.V), _count_nnz(self.W))

    def addition_counts(self) -> tuple[int, int, int]:
        """Matrix additions needed by the write-once strategy.

        Forming ``S_i`` needs ``nnz(U[:, i]) - 1`` block additions (a column
        with a single nonzero is a relabel/scale, not an add); similarly for
        ``T_i``.  Each output entry ``C_q`` needs ``nnz(W[q, :]) - 1`` adds.
        """
        adds_u = sum(
            max(0, sum(1 for e in self.U[:, i] if e) - 1) for i in range(self.rank)
        )
        adds_v = sum(
            max(0, sum(1 for e in self.V[:, i] if e) - 1) for i in range(self.rank)
        )
        adds_w = sum(
            max(0, sum(1 for e in self.W[q, :] if e) - 1)
            for q in range(self.m * self.k)
        )
        return (adds_u, adds_v, adds_w)

    # ------------------------------------------------------------------
    # error model
    # ------------------------------------------------------------------

    def error_bound(self, d: int = 23, steps: int = 1) -> float:
        """Minimum achievable relative error ``2**(-d*sigma/(sigma+s*phi))``.

        ``d`` is the number of fractional bits of the working precision
        (23 for single, 52 for double).  Exact algorithms return ``2**-d``.
        """
        if d <= 0:
            raise ValueError("precision bits d must be positive")
        if steps < 1:
            raise ValueError("steps must be >= 1")
        if self.is_exact or self.phi == 0:
            return 2.0**-d
        sigma = max(self.sigma, 1)
        return 2.0 ** (-d * sigma / (sigma + steps * self.phi))

    # ------------------------------------------------------------------
    # numeric evaluation
    # ------------------------------------------------------------------

    #: How many distinct ``(lam, dtype)`` evaluations each algorithm keeps.
    #: Tuning sweeps iterate over many candidate lambdas; bounding the
    #: cache keeps them from pinning every candidate's arrays forever.
    EVAL_CACHE_SIZE = 8

    def evaluate(
        self, lam: float, dtype: npt.DTypeLike = np.float64
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Evaluate the Laurent coefficients at a concrete ``lambda``.

        Returns float arrays ``(Un, Vn, Wn)`` with the same shapes as
        ``(U, V, W)``.  Exact algorithms may be evaluated with any ``lam``
        (their coefficients are lambda-free); APA algorithms require
        ``0 < lam``.

        Results are memoized per ``(lam, dtype)`` — a training loop
        evaluates the same point thousands of times — and the returned
        arrays are marked read-only because they are shared between
        callers.  Copy before mutating (no in-repo caller does).
        """
        if self.is_apa and not lam > 0:
            raise ValueError(f"APA algorithm {self.name!r} needs lambda > 0")

        key = (float(lam), np.dtype(dtype).str)
        if self._eval_cache is None:
            self._eval_cache = {}
        cached = self._eval_cache.get(key)
        if cached is not None:
            return cached

        def _eval(M: np.ndarray) -> np.ndarray:
            out = np.zeros(M.shape, dtype=dtype)
            for idx, entry in np.ndenumerate(M):
                if entry:
                    out[idx] = entry(lam)
            out.flags.writeable = False
            return out

        result = (_eval(self.U), _eval(self.V), _eval(self.W))
        while len(self._eval_cache) >= self.EVAL_CACHE_SIZE:
            self._eval_cache.pop(next(iter(self._eval_cache)))
        self._eval_cache[key] = result
        return result

    def clear_evaluation_cache(self) -> None:
        """Drop memoized ``evaluate`` results (benchmarks' cold path)."""
        if self._eval_cache is not None:
            self._eval_cache.clear()

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    def signature(self) -> str:
        """Human-readable tag like ``<3,2,2>:10``."""
        return f"<{self.m},{self.n},{self.k}>:{self.rank}"

    def __repr__(self) -> str:
        return f"BilinearAlgorithm({self.name!r}, {self.signature()})"
