"""A tiny rule DSL mirroring how papers present bilinear algorithms.

Papers write algorithms as a list of products of linear combinations::

    M1 = (A11 + A22) * (lam*B11 + B22)
    ...
    C11 = lam**-1 * (M1 + M2 - M3 + M4)

Transcribing that into flat ``(U, V, W)`` coefficient matrices by hand is
error-prone, so :func:`rule_to_algorithm` accepts the rule in a structured
form that visually matches the paper text:

- ``a_combos[i]`` — mapping ``(row, col) -> coeff`` for the A-side linear
  combination of multiplication ``M_{i+1}``;
- ``b_combos[i]`` — same for the B side;
- ``c_combos[(row, col)]`` — mapping ``mult_index -> coeff`` giving the
  linear combination of products forming that output entry.

Coefficients may be ints, floats, Fractions, or Laurent polynomials; the
helpers :data:`L`, :data:`Li` (``lambda`` and ``lambda**-1``) keep rules
readable.
"""

from __future__ import annotations

from typing import Mapping

from repro.algorithms.spec import BilinearAlgorithm, coeff_matrix
from repro.linalg.laurent import Laurent
from repro.linalg.tensor import a_index, b_index, c_index

__all__ = ["L", "Li", "rule_to_algorithm"]

#: The monomial ``lambda`` — for writing rules like ``{(0, 0): L}``.
L = Laurent.lam(1)
#: The monomial ``lambda**-1``.
Li = Laurent.lam(-1)


def _as_laurent(value: Laurent | int | float) -> Laurent:
    return value if isinstance(value, Laurent) else Laurent.const(value)


def rule_to_algorithm(
    name: str,
    m: int,
    n: int,
    k: int,
    a_combos: list[Mapping[tuple[int, int], object]],
    b_combos: list[Mapping[tuple[int, int], object]],
    c_combos: Mapping[tuple[int, int], Mapping[int, object]],
    source: str = "",
) -> BilinearAlgorithm:
    """Assemble a :class:`BilinearAlgorithm` from paper-style combinations.

    ``a_combos`` and ``b_combos`` must have equal length ``r`` (the rank).
    Multiplication indices in ``c_combos`` are **zero-based**.  Matrix
    indices are zero-based ``(row, col)`` — the paper's ``A11`` is
    ``(0, 0)``.
    """
    r = len(a_combos)
    if len(b_combos) != r:
        raise ValueError(
            f"rank mismatch: {r} A-combinations vs {len(b_combos)} B-combinations"
        )
    if r < 1:
        raise ValueError("an algorithm needs at least one multiplication")

    U = coeff_matrix(m * n, r)
    V = coeff_matrix(n * k, r)
    W = coeff_matrix(m * k, r)

    for i, combo in enumerate(a_combos):
        if not combo:
            raise ValueError(f"multiplication M{i + 1} has an empty A combination")
        for (row, col), coeff in combo.items():
            U[a_index(row, col, m, n), i] = _as_laurent(coeff)

    for i, combo in enumerate(b_combos):
        if not combo:
            raise ValueError(f"multiplication M{i + 1} has an empty B combination")
        for (row, col), coeff in combo.items():
            V[b_index(row, col, n, k), i] = _as_laurent(coeff)

    seen_outputs = set()
    for (row, col), contributions in c_combos.items():
        q = c_index(row, col, m, k)
        seen_outputs.add(q)
        for mult, coeff in contributions.items():
            if not (0 <= mult < r):
                raise ValueError(
                    f"output C{row + 1}{col + 1} references M{mult + 1}, "
                    f"but rank is {r}"
                )
            W[q, mult] = _as_laurent(coeff)

    if len(seen_outputs) != m * k:
        missing = m * k - len(seen_outputs)
        raise ValueError(f"{missing} output entries have no combination")

    return BilinearAlgorithm(name=name, m=m, n=n, k=k, U=U, V=V, W=W, source=source)
