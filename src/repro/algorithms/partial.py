"""Partial matrix multiplication — the construction behind Bini's rule.

Bini, Capovani, Lotti & Romani (1979) did not find their ``<3,2,2>:10``
algorithm directly: they found a rank-5 *partial* algorithm that
approximately computes three of the four entry-products of a 2x2 product
(one input entry unused), and glued two copies along a shared row of
``A``.  This module makes that construction executable and checkable:

- a :class:`PartialTarget` names the subset of the matmul tensor an
  algorithm must reproduce (which ``A`` entries exist, which ``C``
  entries are owed which products);
- :func:`verify_partial` proves a triplet set against a partial target
  over exact rational arithmetic (same standard as the full verifier);
- :func:`bini_partial_upper` / :func:`bini_partial_lower` are the two
  rank-5 halves of Bini's rule, each verified against its target;
- :func:`assemble_bini322` glues them and (verifiably) reproduces the
  catalog's full ``<3,2,2>:10`` rule.

Beyond its historical interest, the partial machinery is the natural
representation for algorithms with structured-zero operands (triangular
A), which is where these cores apply directly.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.algorithms.spec import BilinearAlgorithm, coeff_matrix
from repro.linalg.laurent import Laurent
from repro.linalg.tensor import a_index, b_index, c_index, triple_product_tensor

__all__ = [
    "PartialTarget",
    "verify_partial",
    "bini_partial_upper",
    "bini_partial_lower",
    "assemble_bini322",
]

L = Laurent.lam(1)
Li = Laurent.lam(-1)


@dataclass(frozen=True)
class PartialTarget:
    """A subset of the ``<m,n,k>`` matmul tensor to be computed.

    ``products`` lists the required scalar products as
    ``((i, l), (l, j))`` index pairs, i.e. ``A[i,l] * B[l,j]`` must appear
    (with coefficient 1) in ``C[i,j]``.  Products not listed must appear
    with coefficient 0 at lambda**0.  ``forbidden_a`` lists ``A`` entries
    the algorithm may not read at all (Bini's upper core never touches
    the lower-left entry).
    """

    m: int
    n: int
    k: int
    products: frozenset
    forbidden_a: frozenset = frozenset()

    @classmethod
    def make(
        cls,
        m: int,
        n: int,
        k: int,
        products: Iterable[tuple[tuple[int, int], tuple[int, int]]],
        forbidden_a: Iterable[tuple[int, int]] = (),
    ) -> "PartialTarget":
        return cls(m=m, n=n, k=k,
                   products=frozenset(products),
                   forbidden_a=frozenset(forbidden_a))

    def target_tensor(self) -> np.ndarray:
        """The partial tensor: 1 at required products, 0 elsewhere."""
        T = np.zeros((self.m * self.n, self.n * self.k, self.m * self.k),
                     dtype=np.int8)
        for (i, l), (l2, j) in self.products:
            if l != l2:
                raise ValueError(f"product ((A{i}{l}),(B{l2}{j})) is not a "
                                 "matmul term")
            T[a_index(i, l, self.m, self.n),
              b_index(l, j, self.n, self.k),
              c_index(i, j, self.m, self.k)] = 1
        return T


@dataclass(frozen=True)
class PartialReport:
    valid: bool
    sigma: int
    failures: tuple[str, ...]


def verify_partial(U: np.ndarray, V: np.ndarray, W: np.ndarray,
                   target: PartialTarget) -> PartialReport:
    """Prove a triplet set computes exactly the target's products.

    Conditions: (1) forbidden ``A`` rows of ``U`` are identically zero,
    (2) no negative lambda powers survive the contraction, (3) the
    lambda**0 term equals the partial target tensor everywhere.
    """
    failures: list[str] = []
    for (i, l) in target.forbidden_a:
        row = a_index(i, l, target.m, target.n)
        if any(U[row, t] for t in range(U.shape[1])):
            failures.append(f"forbidden A entry ({i},{l}) is read")

    T = target.target_tensor()
    S = triple_product_tensor(U, V, W)
    sigma = 0
    for idx in np.ndindex(S.shape):
        diff = S[idx] - Laurent.const(int(T[idx]))
        if diff.is_zero():
            continue
        lo = diff.min_exponent()
        if lo <= 0:
            failures.append(f"entry {idx}: lambda**{lo} term {diff.coeff(lo)}")
            continue
        sigma = lo if sigma == 0 else min(sigma, lo)
    return PartialReport(valid=not failures, sigma=sigma,
                         failures=tuple(failures))


def bini_partial_upper() -> tuple[np.ndarray, np.ndarray, np.ndarray, PartialTarget]:
    """Bini's rank-5 partial core on a 2x2 problem, upper form.

    Never reads ``A21``.  Computes (approximately, sigma = 1):

        C11 = A11 B11 + A12 B21        (complete)
        C12 = A11 B12 + A12 B22        (complete)
        C21 = A22 B21                  (the A-column-2 part only)
        C22 = A22 B22                  (the A-column-2 part only)

    These are multiplications M1-M5 of the full rule with row indices
    (1, 2) mapped onto the 2x2 block.
    """
    # A combos over a 2x2 A (row-major: A11,A12,A21,A22 -> 0..3)
    a = [
        {(0, 0): Laurent.one(), (1, 1): Laurent.one()},   # A11 + A22
        {(1, 1): Laurent.one()},                          # A22
        {(0, 0): Laurent.one()},                          # A11
        {(0, 1): L, (1, 1): Laurent.one()},               # lam A12 + A22
        {(0, 0): Laurent.one(), (0, 1): L},               # A11 + lam A12
    ]
    b = [
        {(0, 0): L, (1, 1): Laurent.one()},               # lam B11 + B22
        {(1, 0): Laurent.const(-1), (1, 1): Laurent.const(-1)},
        {(1, 1): Laurent.one()},                          # B22
        {(0, 0): -L, (1, 0): Laurent.one()},              # -lam B11 + B21
        {(0, 1): L, (1, 1): Laurent.one()},               # lam B12 + B22
    ]
    c = {
        (0, 0): {0: Li, 1: Li, 2: -Li, 3: Li},
        (0, 1): {2: -Li, 4: Li},
        (1, 0): {3: 1},            # M4 ~ A22 B21 + O(lam)
        (1, 1): {0: 1, 4: -1},     # M1 - M5 ~ A22 B22 + O(lam)
    }
    U = coeff_matrix(4, 5)
    V = coeff_matrix(4, 5)
    W = coeff_matrix(4, 5)
    for t, combo in enumerate(a):
        for (i, j), coeff in combo.items():
            U[a_index(i, j, 2, 2), t] = coeff
    for t, combo in enumerate(b):
        for (i, j), coeff in combo.items():
            V[b_index(i, j, 2, 2), t] = coeff
    for (i, j), contrib in c.items():
        for t, coeff in contrib.items():
            W[c_index(i, j, 2, 2), t] = coeff if isinstance(coeff, Laurent) \
                else Laurent.const(coeff)
    target = PartialTarget.make(
        2, 2, 2,
        products=[
            ((0, 0), (0, 0)), ((0, 1), (1, 0)),   # C11 complete
            ((0, 0), (0, 1)), ((0, 1), (1, 1)),   # C12 complete
            ((1, 1), (1, 0)),                     # C21: A22 B21 only
            ((1, 1), (1, 1)),                     # C22: A22 B22 only
        ],
        forbidden_a=[(1, 0)],
    )
    return U, V, W, target


def bini_partial_lower() -> tuple[np.ndarray, np.ndarray, np.ndarray, PartialTarget]:
    """The mirrored rank-5 core (multiplications M6-M10 of the full rule).

    Never reads ``A12`` (of its own 2x2 block).  Computes C21, C22
    completely and the A-column-1 parts of C11, C12.
    """
    a = [
        {(0, 0): Laurent.one(), (1, 1): Laurent.one()},   # A11 + A22 (M6)
        {(0, 0): Laurent.one()},                          # A11        (M7)
        {(1, 1): Laurent.one()},                          # A22        (M8)
        {(0, 0): Laurent.one(), (1, 0): L},               # A11 + lam A21 (M9)
        {(1, 0): L, (1, 1): Laurent.one()},               # lam A21 + A22 (M10)
    ]
    b = [
        {(0, 0): Laurent.one(), (1, 1): L},               # B11 + lam B22
        {(0, 0): Laurent.const(-1), (0, 1): Laurent.const(-1)},
        {(0, 0): Laurent.one()},                          # B11
        {(0, 1): Laurent.one(), (1, 1): -L},              # B12 - lam B22
        {(0, 0): Laurent.one(), (1, 0): L},               # B11 + lam B21
    ]
    c = {
        (0, 0): {0: 1, 4: -1},     # M6 - M10 ~ A11 B11 + O(lam)
        (0, 1): {3: 1},            # M9 ~ A11 B12 + O(lam)
        (1, 0): {2: -Li, 4: Li},
        (1, 1): {0: Li, 1: Li, 2: -Li, 3: Li},
    }
    U = coeff_matrix(4, 5)
    V = coeff_matrix(4, 5)
    W = coeff_matrix(4, 5)
    for t, combo in enumerate(a):
        for (i, j), coeff in combo.items():
            U[a_index(i, j, 2, 2), t] = coeff
    for t, combo in enumerate(b):
        for (i, j), coeff in combo.items():
            V[b_index(i, j, 2, 2), t] = coeff
    for (i, j), contrib in c.items():
        for t, coeff in contrib.items():
            W[c_index(i, j, 2, 2), t] = coeff if isinstance(coeff, Laurent) \
                else Laurent.const(coeff)
    target = PartialTarget.make(
        2, 2, 2,
        products=[
            ((0, 0), (0, 0)),                     # C11: A11 B11 only
            ((0, 0), (0, 1)),                     # C12: A11 B12 only
            ((1, 0), (0, 0)), ((1, 1), (1, 0)),   # C21 complete
            ((1, 0), (0, 1)), ((1, 1), (1, 1)),   # C22 complete
        ],
        forbidden_a=[(0, 1)],
    )
    return U, V, W, target


def assemble_bini322(name: str = "bini322_assembled") -> BilinearAlgorithm:
    """Glue the two partial cores into the full ``<3,2,2>:10`` rule.

    The upper core acts on rows (1, 2) of the 3-row ``A``; the lower core
    on rows (2, 3).  Row 2's products are split between them: the upper
    core supplies the ``A[2,2]`` column, the lower core the ``A[2,1]``
    column (reading the shared row through its own index map).  The
    result must verify as a full APA algorithm — the test suite checks it
    matches the catalog rule's error structure.
    """
    m, n, k = 3, 2, 2
    U = coeff_matrix(m * n, 10)
    V = coeff_matrix(n * k, 10)
    W = coeff_matrix(m * k, 10)

    uU, uV, uW, _ = bini_partial_upper()
    lU, lV, lW, _ = bini_partial_lower()

    def place(block_U: np.ndarray, block_V: np.ndarray,
              block_W: np.ndarray, row_map: dict[int, int],
              col_offset: int) -> None:
        for t in range(5):
            for i2 in range(2):
                for j2 in range(2):
                    cu = block_U[a_index(i2, j2, 2, 2), t]
                    if cu:
                        U[a_index(row_map[i2], j2, m, n), col_offset + t] = cu
                    cw = block_W[c_index(i2, j2, 2, 2), t]
                    if cw:
                        W[c_index(row_map[i2], j2, m, k), col_offset + t] = \
                            W[c_index(row_map[i2], j2, m, k), col_offset + t] + cw
            for s in range(4):
                cv = block_V[s, t]
                if cv:
                    V[s, col_offset + t] = cv

    place(uU, uV, uW, row_map={0: 0, 1: 1}, col_offset=0)
    place(lU, lV, lW, row_map={0: 1, 1: 2}, col_offset=5)

    return BilinearAlgorithm(
        name=name, m=m, n=n, k=k, U=U, V=V, W=W,
        source="assembled from Bini's two rank-5 partial cores",
    )
