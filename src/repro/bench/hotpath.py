"""Hot-path benchmark: plan-cached execution vs the per-call cold path.

Quantifies what the plan-and-arena engine (:mod:`repro.core.plan`) buys
on the workload the ROADMAP cares about — thousands of identically
shaped products:

- repeated ``apa_matmul`` calls on one shape, cold (partition +
  coefficient evaluation + buffer allocation rebuilt every call, the
  pre-plan behavior) vs warm (one cached plan, pooled arenas);
- a short MLP train step (forward + backward through APA-backed Dense
  layers) under the same two regimes.

Numerics are asserted identical (the plan path is bit-for-bit the
interpreter), so the speedup is pure overhead reclaimed.  Since the
ExecutionEngine refactor the bench also measures the *dispatch* cost of
the public shim vs the engine-private interpreter entry
(:func:`measure_engine_overhead`, paired-median like the obs gate) and
``benchmarks/bench_hotpath.py`` gates it below 2%.  Run through
``python -m repro hotpath`` or ``benchmarks/bench_hotpath.py`` (which
emits ``BENCH_hotpath.json`` for the CI perf trajectory).
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.apa_matmul import apa_matmul
from repro.core.backend import APABackend
from repro.core.plan import PlanCache

__all__ = ["HotpathResult", "run_hotpath", "format_hotpath",
           "measure_engine_overhead"]


@dataclass(frozen=True)
class HotpathResult:
    """Timings (seconds per call, best of ``repeats``) and cache stats."""

    algorithm: str
    n: int
    iters: int
    steps: int
    dtype: str
    matmul_cold: float
    matmul_warm: float
    train_cold: float
    train_warm: float
    max_abs_diff: float
    engine_overhead: float = 0.0
    plan_cache: dict = field(default_factory=dict)
    pool: dict = field(default_factory=dict)

    @property
    def matmul_speedup(self) -> float:
        return self.matmul_cold / self.matmul_warm

    @property
    def train_speedup(self) -> float:
        if not self.train_cold:
            return 1.0
        return self.train_cold / self.train_warm

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "n": self.n,
            "iters": self.iters,
            "steps": self.steps,
            "dtype": self.dtype,
            "matmul_cold_s": self.matmul_cold,
            "matmul_warm_s": self.matmul_warm,
            "matmul_speedup": self.matmul_speedup,
            "train_cold_s": self.train_cold,
            "train_warm_s": self.train_warm,
            "train_speedup": self.train_speedup,
            "max_abs_diff": self.max_abs_diff,
            "engine_overhead": self.engine_overhead,
            "plan_cache": self.plan_cache,
            "pool": self.pool,
        }


def _best_per_call(fn, iters: int, repeats: int) -> float:
    """Best mean-per-call over ``repeats`` runs of an ``iters``-call loop."""
    fn()  # warmup (also primes caches on the warm variants)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, (time.perf_counter() - t0) / iters)
    return best


def measure_engine_overhead(
    algorithm: str = "bini322",
    n: int = 96,
    iters: int = 40,
    repeats: int = 5,
    dtype=np.float32,
    seed: int = 0,
) -> float:
    """Dispatch cost of the engine shim vs the pre-refactor direct call.

    Times the public ``apa_matmul`` shim (which routes through the
    :class:`~repro.core.engine.ExecutionEngine` fast lane) against the
    engine-private interpreter entry on the *same* warm plan path, as
    interleaved rounds of ``iters`` calls each; returns the median of
    per-round ``shim/direct`` ratios minus one (the paired-median
    estimator the obs-overhead gate uses, robust to drift).  Gated
    below 2% by ``benchmarks/bench_hotpath.py`` — the layered engine
    must stay free on the hot path.
    """
    from repro.algorithms.catalog import get_algorithm
    from repro.core.apa_matmul import _apa_matmul_impl  # lint: ignore[ENG001]: the overhead probe must import the engine-private seam it measures

    alg = get_algorithm(algorithm) if isinstance(algorithm, str) \
        else algorithm
    rng = np.random.default_rng(seed)
    A = rng.random((n, n)).astype(dtype)
    B = rng.random((n, n)).astype(dtype)
    cache = PlanCache()

    def direct_round() -> None:
        for _ in range(iters):
            _apa_matmul_impl(  # lint: ignore[ENG001]: measuring the seam
                A, B, alg, None, 1, None, None, cache)

    def shim_round() -> None:
        for _ in range(iters):
            apa_matmul(A, B, alg, plan_cache=cache)

    # warm up both paths (primes the plan cache and the arena pool)
    direct_round()
    shim_round()
    direct, shim = [], []
    for _ in range(repeats):
        t0 = time.perf_counter()
        direct_round()
        t1 = time.perf_counter()
        shim_round()
        t2 = time.perf_counter()
        direct.append(t1 - t0)
        shim.append(t2 - t1)
    return statistics.median(s / b for s, b in zip(shim, direct)) - 1.0


def _train_step(model, loss, x, y) -> None:
    logits = model.forward(x, training=True)
    loss.forward(logits, y)
    model.backward(loss.backward())
    for p in model.parameters():
        p.zero_grad()


def _build_mlp(algorithm, plan_cache, in_dim: int, hidden: int,
               out_dim: int):
    from repro.nn.layers import Dense, ReLU
    from repro.nn.model import Sequential

    rng = np.random.default_rng(0)
    return Sequential([
        Dense(in_dim, hidden,
              backend=APABackend(algorithm=algorithm, plan_cache=plan_cache),
              rng=rng),
        ReLU(),
        Dense(hidden, out_dim,
              backend=APABackend(algorithm=algorithm, plan_cache=plan_cache),
              rng=rng),
    ])


def run_hotpath(
    algorithm: str = "bini322",
    n: int = 96,
    iters: int = 40,
    steps: int = 1,
    dtype=np.float32,
    repeats: int = 3,
    batch: int = 64,
    hidden: int = 96,
    train: bool = True,
    seed: int = 0,
) -> HotpathResult:
    """Measure cold vs plan-cached throughput on one configuration.

    The cold loop reproduces the pre-plan per-call cost exactly: it runs
    with ``plan_cache=False`` *and* drops the algorithm's memoized
    coefficient evaluation before every call.  The warm loop uses a
    private primed :class:`~repro.core.plan.PlanCache`.
    """
    from repro.algorithms.catalog import get_algorithm
    from repro.nn.losses import SoftmaxCrossEntropy
    from repro.parallel.pool import pool_stats

    alg = get_algorithm(algorithm)
    rng = np.random.default_rng(seed)
    A = rng.random((n, n)).astype(dtype)
    B = rng.random((n, n)).astype(dtype)

    cache = PlanCache()

    def cold_call():
        alg.clear_evaluation_cache()
        return apa_matmul(A, B, alg, steps=steps, plan_cache=False)

    def warm_call():
        return apa_matmul(A, B, alg, steps=steps, plan_cache=cache)

    # Numerics gate first: plan-cached result must match the interpreter.
    reference = cold_call()
    planned = warm_call()
    max_abs_diff = float(np.max(np.abs(reference - planned)))
    if not np.allclose(reference, planned, rtol=1e-6, atol=1e-6):
        raise AssertionError(
            f"plan-cached result diverged from interpreter "
            f"(max |diff| = {max_abs_diff:.3e})")

    matmul_cold = _best_per_call(cold_call, iters, repeats)
    matmul_warm = _best_per_call(warm_call, iters, repeats)

    train_cold = train_warm = 0.0
    if train:
        loss = SoftmaxCrossEntropy()
        x = rng.random((batch, n)).astype(dtype)
        y = rng.integers(0, 10, size=batch)
        cold_model = _build_mlp(alg, False, n, hidden, 10)
        warm_model = _build_mlp(alg, cache, n, hidden, 10)
        train_iters = max(1, iters // 4)

        def cold_step():
            alg.clear_evaluation_cache()
            _train_step(cold_model, loss, x, y)

        train_cold = _best_per_call(cold_step, train_iters, repeats)
        train_warm = _best_per_call(
            lambda: _train_step(warm_model, loss, x, y), train_iters, repeats)

    engine_overhead = measure_engine_overhead(
        algorithm, n=n, iters=iters, repeats=max(repeats, 5), dtype=dtype,
        seed=seed)

    return HotpathResult(
        algorithm=algorithm, n=n, iters=iters, steps=steps,
        dtype=np.dtype(dtype).name,
        matmul_cold=matmul_cold, matmul_warm=matmul_warm,
        train_cold=train_cold, train_warm=train_warm,
        max_abs_diff=max_abs_diff, engine_overhead=engine_overhead,
        plan_cache=cache.stats(), pool=pool_stats(),
    )


def format_hotpath(result: HotpathResult) -> str:
    lines = [
        f"hot path: {result.algorithm} n={result.n} steps={result.steps} "
        f"{result.dtype} ({result.iters} calls/loop)",
        f"  matmul  cold {result.matmul_cold * 1e6:9.1f} us/call   "
        f"warm {result.matmul_warm * 1e6:9.1f} us/call   "
        f"speedup {result.matmul_speedup:5.2f}x",
    ]
    if result.train_cold:
        lines.append(
            f"  train   cold {result.train_cold * 1e6:9.1f} us/step   "
            f"warm {result.train_warm * 1e6:9.1f} us/step   "
            f"speedup {result.train_speedup:5.2f}x")
    pc = result.plan_cache
    lines.append(
        f"  plans: {pc.get('size', 0)} cached, {pc.get('hits', 0)} hits / "
        f"{pc.get('misses', 0)} misses; max |diff| vs interpreter "
        f"{result.max_abs_diff:.2e}")
    lines.append(
        f"  engine dispatch {result.engine_overhead * 100:+.2f}% "
        f"(paired median, shim vs direct impl on the warm path)")
    return "\n".join(lines)
