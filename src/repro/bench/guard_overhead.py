"""Measure the wall-clock cost of the guarded-execution health checks.

The guard's per-call work — a NaN/Inf scan plus ``probe_vectors``
randomized residual probes — is O(n^2) against the product's
super-quadratic flops, so overhead must shrink with n; the acceptance
target for this repo is <= 10% at n=1024.  Run via
``python -m repro guard-overhead`` or call :func:`measure_guard_overhead`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.timing import MeasuredTime, measure
from repro.core.backend import make_backend

__all__ = ["GuardOverhead", "measure_guard_overhead"]


@dataclass(frozen=True)
class GuardOverhead:
    algorithm: str
    n: int
    unguarded: MeasuredTime
    guarded: MeasuredTime

    @property
    def overhead(self) -> float:
        """Fractional wall-clock cost of the guard (best-of times)."""
        return self.guarded.best / self.unguarded.best - 1.0

    def describe(self) -> str:
        return (
            f"{self.algorithm} n={self.n}: unguarded {self.unguarded.best:.4f}s, "
            f"guarded {self.guarded.best:.4f}s "
            f"({self.overhead * 100:+.1f}% overhead)"
        )


def measure_guard_overhead(
    algorithm: str = "bini322",
    n: int = 1024,
    steps: int = 1,
    dtype=np.float32,
    repeats: int = 3,
    seed: int = 0,
) -> GuardOverhead:
    """Time guarded vs unguarded APA matmul on one ``n x n`` product."""
    rng = np.random.default_rng(seed)
    A = rng.random((n, n)).astype(dtype)
    B = rng.random((n, n)).astype(dtype)

    plain = make_backend(algorithm, steps=steps)
    guarded = make_backend(algorithm, steps=steps, guarded=True)

    t_plain = measure(lambda: plain.matmul(A, B), repeats=repeats)
    t_guarded = measure(lambda: guarded.matmul(A, B), repeats=repeats)
    return GuardOverhead(algorithm=algorithm, n=n, unguarded=t_plain,
                         guarded=t_guarded)
