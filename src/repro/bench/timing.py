"""Wall-clock measurement helpers for the real-execution benchmarks."""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["MeasuredTime", "measure"]


@dataclass(frozen=True)
class MeasuredTime:
    """Statistics over repeated timings (seconds)."""

    best: float
    mean: float
    std: float
    repeats: int

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")


def measure(fn, repeats: int = 3, warmup: int = 1) -> MeasuredTime:
    """Time ``fn()`` — ``warmup`` unrecorded calls then ``repeats`` timed.

    Reports the *best* (standard practice for throughput benchmarks: the
    minimum is the least noise-contaminated estimate) plus mean/std.
    """
    if repeats < 1 or warmup < 0:
        raise ValueError("repeats >= 1 and warmup >= 0 required")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    n = len(samples)
    mean = sum(samples) / n
    var = sum((s - mean) ** 2 for s in samples) / n
    return MeasuredTime(best=min(samples), mean=mean, std=var**0.5, repeats=n)
