"""Measure the cost of the observability layer on the warm hot path.

The tracing contract (see ``docs/OBSERVABILITY.md``) is that a span
site with *no* tracer installed costs exactly one module-attribute read
and one ``is None`` branch.  This benchmark holds the contract to
account on the hottest instrumented site — a warm, plan-cached
:meth:`~repro.core.plan.ExecutionPlan.execute` — by timing three loops
over the same cached plan:

- **baseline**: ``plan._execute`` — the un-instrumented body;
- **disabled**: ``plan.execute`` with no tracer installed — baseline
  plus the single branch (must stay under ``max_overhead``, 2% by
  default, enforced by the ``repro obs-overhead`` CLI gate);
- **enabled**: ``plan.execute`` under a live tracer — the price of
  actually recording spans, reported for context (not gated).

The branch under test costs nanoseconds while one sample loop costs
milliseconds, so the estimator is built for noise rejection: the legs
are sampled *interleaved* (round-robin, one sample of each per round),
and the reported overhead is the **median of per-round ratios** — each
round's disabled sample divided by the same round's baseline sample.
Pairing within a round cancels slow drift (CPU frequency scaling,
cache warm-up, background load); the median discards the rounds a
scheduler preemption contaminated.  Run via
``python -m repro obs-overhead``.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass

import numpy as np

__all__ = ["ObsOverhead", "measure_obs_overhead"]


def _interleaved(fns, repeats: int, warmup: int = 2) -> list[list[float]]:
    """Per-callable sample lists, collected round-robin."""
    for _ in range(warmup):
        for fn in fns:
            fn()
    samples: list[list[float]] = [[] for _ in fns]
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            samples[i].append(time.perf_counter() - t0)
    return samples


def _paired_overhead(base: list[float], other: list[float]) -> float:
    """Median of per-round ``other/base`` ratios, minus one."""
    return statistics.median(o / b for o, b in zip(other, base)) - 1.0


@dataclass(frozen=True)
class ObsOverhead:
    algorithm: str
    n: int
    iters: int
    base_samples: tuple[float, ...]
    disabled_samples: tuple[float, ...]
    enabled_samples: tuple[float, ...]

    @property
    def disabled_overhead(self) -> float:
        """Fractional cost of the dormant instrumentation (paired median)."""
        return _paired_overhead(list(self.base_samples),
                                list(self.disabled_samples))

    @property
    def enabled_overhead(self) -> float:
        """Fractional cost of live span recording (paired median)."""
        return _paired_overhead(list(self.base_samples),
                                list(self.enabled_samples))

    def describe(self) -> str:
        best = min(self.base_samples)
        per_call = best / self.iters
        return (
            f"{self.algorithm} n={self.n}, {self.iters} warm plan "
            f"executions per sample, {len(self.base_samples)} rounds "
            f"({per_call * 1e6:.1f} us/call):\n"
            f"  baseline (_execute)       best {best:.4f}s\n"
            f"  tracer disabled (execute) best {min(self.disabled_samples):.4f}s "
            f"({self.disabled_overhead * 100:+.2f}% paired median)\n"
            f"  tracer enabled  (execute) best {min(self.enabled_samples):.4f}s "
            f"({self.enabled_overhead * 100:+.2f}% paired median)"
        )


def measure_obs_overhead(
    algorithm: str = "bini322",
    n: int = 96,
    steps: int = 1,
    iters: int = 30,
    repeats: int = 25,
    dtype=np.float32,
    seed: int = 0,
) -> ObsOverhead:
    """Time instrumented-vs-bare execution of one warm cached plan.

    Must run with no tracer installed (raises otherwise): the
    ``disabled`` leg is only meaningful when the span site takes its
    no-op branch.
    """
    from repro.algorithms.catalog import get_algorithm
    from repro.core.lam import optimal_lambda, precision_bits
    from repro.core.plan import PlanCache
    from repro.obs import tracer as _obs_tracer
    from repro.obs.tracer import use_tracer

    if _obs_tracer.ACTIVE is not None:
        raise RuntimeError(
            "measure_obs_overhead needs the tracer disabled to time the "
            "no-op branch; exit the active use_tracer() block first")

    alg = get_algorithm(algorithm)
    rng = np.random.default_rng(seed)
    A = rng.random((n, n)).astype(dtype)
    B = rng.random((n, n)).astype(dtype)
    lam = optimal_lambda(alg, d=precision_bits(np.dtype(dtype)), steps=steps)

    # One private warm plan; never touches the process-wide cache.
    plan = PlanCache().plan_for(alg, n, n, n, dtype, lam, steps=steps)
    plan._execute(A, B)  # warm the workspace pool

    def run_baseline() -> None:
        for _ in range(iters):
            plan._execute(A, B)

    def run_disabled() -> None:
        for _ in range(iters):
            plan.execute(A, B)

    def run_enabled() -> None:
        with use_tracer():
            # The fresh per-sample tracer keeps span accumulation from
            # growing the recording cost across rounds.
            for _ in range(iters):
                plan.execute(A, B)

    base, disabled, enabled = _interleaved(
        [run_baseline, run_disabled, run_enabled], repeats=repeats)
    return ObsOverhead(algorithm=alg.name, n=n, iters=iters,
                       base_samples=tuple(base),
                       disabled_samples=tuple(disabled),
                       enabled_samples=tuple(enabled))
