"""Plain-text table and CSV emission for experiment drivers."""

from __future__ import annotations

import io
from typing import Sequence

__all__ = ["format_table", "to_csv"]


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Fixed-width ASCII table, right-aligned numeric columns."""
    if not headers:
        raise ValueError("headers required")
    str_rows = [[_cell(v) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(f"row {i} has {len(row)} cells, expected {len(headers)}")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[j]) for j, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[j]) for j, cell in enumerate(row)))
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Minimal CSV emission (no quoting needs in our numeric tables)."""
    buf = io.StringIO()
    buf.write(",".join(str(h) for h in headers) + "\n")
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width mismatch")
        buf.write(",".join(_cell(v) for v in row) + "\n")
    return buf.getvalue()
