"""Benchmark plumbing: timers, metrics, and table/series formatting."""

from repro.bench.timing import measure, MeasuredTime
from repro.bench.metrics import effective_gflops, relative_frobenius_error
from repro.bench.tables import format_table, to_csv
from repro.bench.guard_overhead import GuardOverhead, measure_guard_overhead

__all__ = [
    "measure",
    "MeasuredTime",
    "GuardOverhead",
    "measure_guard_overhead",
    "effective_gflops",
    "relative_frobenius_error",
    "format_table",
    "to_csv",
]
