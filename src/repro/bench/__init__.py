"""Benchmark plumbing: timers, metrics, and table/series formatting."""

from repro.bench.timing import measure, MeasuredTime
from repro.bench.metrics import effective_gflops, relative_frobenius_error
from repro.bench.tables import format_table, to_csv

__all__ = [
    "measure",
    "MeasuredTime",
    "effective_gflops",
    "relative_frobenius_error",
    "format_table",
    "to_csv",
]
