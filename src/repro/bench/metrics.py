"""Metrics used by the paper's evaluation.

- *effective GFLOPS* (Fig 3): ``1e-9 * 2 n^3 / time`` — normalized to the
  classical flop count so algorithms doing different amounts of work are
  comparable on one axis;
- *relative Frobenius error* (Fig 1): ``||C - C_hat||_F / ||C||_F``
  against a float64 classical reference.
"""

from __future__ import annotations

import numpy as np

__all__ = ["effective_gflops", "relative_frobenius_error"]


def effective_gflops(M: int, N: int, K: int, seconds: float) -> float:
    """The Fig-3 y-axis: classical-equivalent GFLOPS."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    if min(M, N, K) < 1:
        raise ValueError("dims must be positive")
    return 2.0 * M * N * K / seconds / 1e9


def relative_frobenius_error(C_hat: np.ndarray, C_ref: np.ndarray) -> float:
    """The Fig-1 y-axis, with the reference promoted to float64."""
    if C_hat.shape != C_ref.shape:
        raise ValueError(f"shape mismatch {C_hat.shape} vs {C_ref.shape}")
    ref = C_ref.astype(np.float64, copy=False)
    norm = np.linalg.norm(ref)
    if norm == 0:
        raise ValueError("reference product is zero; relative error undefined")
    return float(np.linalg.norm(C_hat.astype(np.float64) - ref) / norm)
