"""Profiling helpers — "no optimization without measuring".

Thin, dependency-free wrappers around :mod:`cProfile` for the workflow
the HPC guides prescribe: profile a realistic call, find the hot
functions, only then optimize.  Used interactively and by the examples;
the report is parsed into structured rows so tests can assert on it.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass

__all__ = ["HotSpot", "profile_call"]


@dataclass(frozen=True)
class HotSpot:
    """One row of a profile: where time went."""

    function: str
    calls: int
    cumulative_seconds: float
    internal_seconds: float


def profile_call(fn, *args, top: int = 10, **kwargs):
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, hotspots)`` with the ``top`` functions by
    cumulative time.  Keep the call around ~a second for a stable
    profile (guides: 10s is ideal; sub-second is fine for smoke use).
    """
    if top < 1:
        raise ValueError("top must be >= 1")
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative")

    hotspots: list[HotSpot] = []
    for func, (cc, nc, tt, ct, _callers) in sorted(
        stats.stats.items(), key=lambda item: item[1][3], reverse=True
    ):
        filename, line, name = func
        label = f"{filename.rsplit('/', 1)[-1]}:{line}({name})"
        hotspots.append(HotSpot(
            function=label,
            calls=int(nc),
            cumulative_seconds=float(ct),
            internal_seconds=float(tt),
        ))
        if len(hotspots) >= top:
            break
    return result, hotspots
