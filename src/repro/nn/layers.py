"""Neural-network layers with pluggable matmul backends.

Each layer implements ``forward(x, training)`` and ``backward(grad)``;
parameters are exposed through :meth:`Layer.parameters` as
:class:`Parameter` objects the optimizers update in place.

:class:`Dense` is the layer the paper's experiments revolve around: its
forward product ``X @ W`` and both backward products (``dY @ W.T`` for the
input gradient, ``X.T @ dY`` for the weight gradient) go through the
layer's :class:`~repro.core.backend.MatmulBackend` — so assigning an
:class:`~repro.core.backend.APABackend` to a layer reproduces the paper's
"custom operator used for both forward propagation and gradient
calculation".

:class:`Conv2D` lowers convolution to matmul via im2col (the paper's §1
cites exactly this as why convolutional layers also benefit), so APA
backends plug into convolutions as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.backend import ClassicalBackend, MatmulBackend
from repro.nn.init import get_initializer

__all__ = [
    "Parameter",
    "Layer",
    "Dense",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Flatten",
    "Dropout",
    "Conv2D",
    "MaxPool2D",
]


@dataclass
class Parameter:
    """A trainable array and its accumulated gradient."""

    value: np.ndarray
    grad: np.ndarray = field(default=None)  # type: ignore[assignment]
    name: str = ""

    def __post_init__(self) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        self.grad[...] = 0


class Layer:
    """Base layer: stateless by default."""

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        return []

    def __repr__(self) -> str:
        return type(self).__name__


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Weight shape ``(in_features, out_features)``.
    backend:
        Matmul backend for the forward and both backward products;
        defaults to classical gemm.
    use_bias:
        Include the additive bias (the paper's MLPs do).
    init:
        Initializer name (see :mod:`repro.nn.init`).
    rng:
        Generator for reproducible initialization.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        backend: MatmulBackend | None = None,
        use_bias: bool = True,
        init: str = "he",
        rng: np.random.Generator | None = None,
        dtype=np.float32,
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError("feature counts must be positive")
        rng = rng or np.random.default_rng(0)
        initializer = get_initializer(init)
        self.in_features = in_features
        self.out_features = out_features
        self.backend: MatmulBackend = backend or ClassicalBackend()
        self.W = Parameter(
            initializer(rng, in_features, (in_features, out_features), dtype),
            name="W",
        )
        self.b = Parameter(np.zeros(out_features, dtype=dtype), name="b") if use_bias else None
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense({self.in_features},{self.out_features}) got input {x.shape}"
            )
        self._x = x if training else None
        y = self.backend.matmul(x, self.W.value)
        if self.b is not None:
            y = y + self.b.value
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before a training forward pass")
        x = self._x
        # The two backward products also run through the (possibly APA)
        # backend, per the paper's §4.1.
        self.W.grad += self.backend.matmul(
            np.ascontiguousarray(x.T), grad
        )
        if self.b is not None:
            self.b.grad += grad.sum(axis=0)
        return self.backend.matmul(grad, np.ascontiguousarray(self.W.value.T))

    def parameters(self) -> list[Parameter]:
        params = [self.W]
        if self.b is not None:
            params.append(self.b)
        return params

    def __repr__(self) -> str:
        return (
            f"Dense({self.in_features}, {self.out_features}, "
            f"backend={self.backend.name})"
        )


class ReLU(Layer):
    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        mask = x > 0
        self._mask = mask if training else None
        return np.where(mask, x, 0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before a training forward pass")
        return np.where(self._mask, grad, 0)


class Sigmoid(Layer):
    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        # numerically stable split on sign
        y = np.empty_like(x)
        pos = x >= 0
        y[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        y[~pos] = ex / (1.0 + ex)
        self._y = y if training else None
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before a training forward pass")
        return grad * self._y * (1.0 - self._y)


class Tanh(Layer):
    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        y = np.tanh(x)
        self._y = y if training else None
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before a training forward pass")
        return grad * (1.0 - self._y**2)


class Flatten(Layer):
    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before a forward pass")
        return grad.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout — identity at inference time."""

    def __init__(self, rate: float = 0.5, rng: np.random.Generator | None = None) -> None:
        if not (0.0 <= rate < 1.0):
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.rng = rng or np.random.default_rng(0)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        mask = (self.rng.random(x.shape) < keep).astype(x.dtype) / keep
        self._mask = mask
        return x * mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int) -> tuple[np.ndarray, int, int]:
    """Lower ``(batch, c, h, w)`` to ``(batch * oh * ow, c * kh * kw)``."""
    b, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    # stride-tricked sliding windows, then one big reshape/copy
    s = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(b, c, oh, ow, kh, kw),
        strides=(s[0], s[1], s[2] * stride, s[3] * stride, s[2], s[3]),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(b * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols), oh, ow


class Conv2D(Layer):
    """2-D convolution lowered to matmul via im2col.

    Input/output layout is ``(batch, channels, height, width)``.  The
    single big product ``cols @ W`` runs through the layer's backend, so
    APA algorithms accelerate convolutions exactly as the paper's §1
    describes for "monolithic multiplications".  Backward w.r.t. the
    input uses a col2im scatter.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 1,
        backend: MatmulBackend | None = None,
        rng: np.random.Generator | None = None,
        dtype=np.float32,
    ) -> None:
        if min(in_channels, out_channels, kernel_size, stride) < 1 or padding < 0:
            raise ValueError("bad Conv2D hyper-parameters")
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.backend: MatmulBackend = backend or ClassicalBackend()
        fan_in = in_channels * kernel_size * kernel_size
        self.W = Parameter(
            get_initializer("he")(rng, fan_in, (fan_in, out_channels), dtype), name="W"
        )
        self.b = Parameter(np.zeros(out_channels, dtype=dtype), name="b")
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(f"Conv2D expects (b,{self.in_channels},h,w), got {x.shape}")
        cols, oh, ow = _im2col(x, self.kernel_size, self.kernel_size, self.stride, self.padding)
        out = self.backend.matmul(cols, self.W.value) + self.b.value
        b = x.shape[0]
        y = out.reshape(b, oh, ow, self.out_channels).transpose(0, 3, 1, 2)
        self._cache = (x.shape, cols, oh, ow) if training else None
        return np.ascontiguousarray(y)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        x_shape, cols, oh, ow = self._cache
        b, c, h, w = x_shape
        k, s, p = self.kernel_size, self.stride, self.padding
        grad_mat = grad.transpose(0, 2, 3, 1).reshape(b * oh * ow, self.out_channels)
        grad_mat = np.ascontiguousarray(grad_mat)
        self.W.grad += self.backend.matmul(np.ascontiguousarray(cols.T), grad_mat)
        self.b.grad += grad_mat.sum(axis=0)
        dcols = self.backend.matmul(grad_mat, np.ascontiguousarray(self.W.value.T))
        # col2im scatter-add
        dx = np.zeros((b, c, h + 2 * p, w + 2 * p), dtype=grad.dtype)
        dwin = dcols.reshape(b, oh, ow, c, k, k).transpose(0, 3, 1, 2, 4, 5)
        for i in range(k):
            for j in range(k):
                dx[:, :, i : i + oh * s : s, j : j + ow * s : s] += dwin[:, :, :, :, i, j]
        if p:
            dx = dx[:, :, p:-p, p:-p]
        return dx

    def parameters(self) -> list[Parameter]:
        return [self.W, self.b]


class MaxPool2D(Layer):
    """Non-overlapping max pooling over ``(batch, c, h, w)``."""

    def __init__(self, size: int = 2) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = size
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        b, c, h, w = x.shape
        s = self.size
        if h % s or w % s:
            raise ValueError(f"spatial dims {h}x{w} not divisible by pool {s}")
        xr = x.reshape(b, c, h // s, s, w // s, s)
        y = xr.max(axis=(3, 5))
        if training:
            mask = xr == y[:, :, :, None, :, None]
            self._cache = (mask, x.shape)
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        mask, shape = self._cache
        g = grad[:, :, :, None, :, None] * mask
        return g.reshape(shape)
