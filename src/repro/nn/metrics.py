"""Classification metrics beyond plain accuracy."""

from __future__ import annotations

import numpy as np

__all__ = ["confusion_matrix", "per_class_accuracy", "top_k_accuracy"]


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray,
                     num_classes: int) -> np.ndarray:
    """Counts ``C[i, j]`` of samples with true class ``i`` predicted ``j``."""
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ValueError("labels must be matching 1-D arrays")
    for arr in (y_true, y_pred):
        if arr.size and (arr.min() < 0 or arr.max() >= num_classes):
            raise ValueError("label out of range")
    C = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(C, (y_true, y_pred), 1)
    return C


def per_class_accuracy(y_true: np.ndarray, y_pred: np.ndarray,
                       num_classes: int) -> np.ndarray:
    """Recall per class; NaN for classes absent from ``y_true``."""
    C = confusion_matrix(y_true, y_pred, num_classes)
    totals = C.sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0, np.diag(C) / totals, np.nan)


def top_k_accuracy(logits: np.ndarray, y_true: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose true class is among the top-k logits."""
    if logits.ndim != 2 or y_true.shape != (logits.shape[0],):
        raise ValueError("logits must be (batch, classes) with matching labels")
    if not (1 <= k <= logits.shape[1]):
        raise ValueError("k out of range")
    topk = np.argpartition(logits, -k, axis=1)[:, -k:]
    return float(np.mean((topk == y_true[:, None]).any(axis=1)))
