"""Model weight persistence (npz checkpoints).

Saves/restores every :class:`~repro.nn.layers.Parameter` of a
:class:`~repro.nn.model.Sequential` model, keyed by layer position and
parameter name, plus a structural signature so a checkpoint cannot be
loaded into a mismatched architecture.  Backends (and thus the APA
configuration) are *not* serialized — they are runtime policy, chosen at
model construction.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.model import Sequential

__all__ = ["save_weights", "load_weights", "model_signature"]


def model_signature(model: Sequential) -> str:
    """Architecture fingerprint: layer class names + parameter shapes."""
    parts = []
    for i, layer in enumerate(model.layers):
        shapes = ",".join(
            f"{p.name}{tuple(p.value.shape)}" for p in layer.parameters()
        )
        parts.append(f"{i}:{type(layer).__name__}({shapes})")
    return "|".join(parts)


def _keyed_parameters(model: Sequential):
    for i, layer in enumerate(model.layers):
        for p in layer.parameters():
            yield f"layer{i}.{p.name or 'param'}", p


def save_weights(model: Sequential, path: str | Path) -> Path:
    """Write all parameters (and the signature) to an ``.npz`` file."""
    path = Path(path)
    arrays = {key: p.value for key, p in _keyed_parameters(model)}
    arrays["__signature__"] = np.array(model_signature(model))
    np.savez(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_weights(model: Sequential, path: str | Path, strict: bool = True) -> None:
    """Restore parameters in place.

    ``strict`` verifies the architecture signature; disable it only to
    load partial/legacy checkpoints (missing keys then raise anyway —
    silent partial loads are how broken models ship).
    """
    with np.load(Path(path), allow_pickle=False) as data:
        if strict:
            stored = str(data["__signature__"])
            current = model_signature(model)
            if stored != current:
                raise ValueError(
                    "checkpoint architecture mismatch:\n"
                    f"  file:  {stored}\n  model: {current}"
                )
        for key, p in _keyed_parameters(model):
            if key not in data:
                raise KeyError(f"checkpoint is missing {key!r}")
            value = data[key]
            if value.shape != p.value.shape:
                raise ValueError(
                    f"{key}: shape {value.shape} does not match "
                    f"{p.value.shape}"
                )
            p.value[...] = value
