"""Normalization layers (extension beyond the paper's MLPs).

Modern MLP/CNN training stacks normalize activations; a downstream user
adopting this library for APA-accelerated training will want them.  Both
layers are gradient-checked in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer, Parameter

__all__ = ["BatchNorm1d", "LayerNorm"]


class BatchNorm1d(Layer):
    """Batch normalization over the batch axis of ``(batch, features)``.

    Training mode normalizes by batch statistics and updates running
    estimates; inference mode uses the running estimates.
    """

    def __init__(self, features: int, momentum: float = 0.1, eps: float = 1e-5,
                 dtype=np.float32) -> None:
        if features < 1:
            raise ValueError("features must be >= 1")
        if not (0.0 < momentum <= 1.0):
            raise ValueError("momentum must be in (0, 1]")
        self.features = features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(features, dtype=dtype), name="gamma")
        self.beta = Parameter(np.zeros(features, dtype=dtype), name="beta")
        self.running_mean = np.zeros(features, dtype=np.float64)
        self.running_var = np.ones(features, dtype=np.float64)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.features:
            raise ValueError(f"BatchNorm1d({self.features}) got input {x.shape}")
        if training:
            if x.shape[0] < 2:
                raise ValueError("batch statistics need at least 2 samples")
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean *= 1 - self.momentum
            self.running_mean += self.momentum * mean
            self.running_var *= 1 - self.momentum
            self.running_var += self.momentum * var
        else:
            mean = self.running_mean.astype(x.dtype)
            var = self.running_var.astype(x.dtype)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        if training:
            self._cache = (x_hat, inv_std)
        return self.gamma.value * x_hat + self.beta.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        x_hat, inv_std = self._cache
        b = grad.shape[0]
        self.gamma.grad += (grad * x_hat).sum(axis=0)
        self.beta.grad += grad.sum(axis=0)
        g = grad * self.gamma.value
        # standard batchnorm backward through the batch statistics
        return (inv_std / b) * (
            b * g - g.sum(axis=0) - x_hat * (g * x_hat).sum(axis=0)
        )

    def parameters(self) -> list[Parameter]:
        return [self.gamma, self.beta]


class LayerNorm(Layer):
    """Layer normalization over the feature axis (batch-size independent)."""

    def __init__(self, features: int, eps: float = 1e-5, dtype=np.float32) -> None:
        if features < 2:
            raise ValueError("LayerNorm needs at least 2 features")
        self.features = features
        self.eps = eps
        self.gamma = Parameter(np.ones(features, dtype=dtype), name="gamma")
        self.beta = Parameter(np.zeros(features, dtype=dtype), name="beta")
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.features:
            raise ValueError(f"LayerNorm({self.features}) got input {x.shape}")
        mean = x.mean(axis=1, keepdims=True)
        var = x.var(axis=1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        if training:
            self._cache = (x_hat, inv_std)
        return self.gamma.value * x_hat + self.beta.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        x_hat, inv_std = self._cache
        d = self.features
        self.gamma.grad += (grad * x_hat).sum(axis=0)
        self.beta.grad += grad.sum(axis=0)
        g = grad * self.gamma.value
        return (inv_std / d) * (
            d * g
            - g.sum(axis=1, keepdims=True)
            - x_hat * (g * x_hat).sum(axis=1, keepdims=True)
        )

    def parameters(self) -> list[Parameter]:
        return [self.gamma, self.beta]
