"""Richer training infrastructure (Trainer, schedules, callbacks).

:class:`~repro.nn.model.Sequential.fit` covers the paper's fixed-LR SGD
protocol; downstream training wants learning-rate schedules, early
stopping, gradient clipping and checkpoints.  The :class:`Trainer` here
composes those around the same forward/backward core, so APA backends
flow through unchanged.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import History, Sequential
from repro.nn.optim import SGD, Optimizer
from repro.obs import tracer as _obs_tracer
from repro.obs.registry import default_registry

__all__ = [
    "LRSchedule",
    "ConstantLR",
    "StepLR",
    "CosineLR",
    "EarlyStopping",
    "Trainer",
    "TrainerCheckpoint",
    "clip_gradients",
]


class LRSchedule:
    """Maps epoch index (0-based) to a learning rate."""

    def rate(self, epoch: int) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantLR(LRSchedule):
    lr: float

    def __post_init__(self) -> None:
        if self.lr <= 0:
            raise ValueError("lr must be positive")

    def rate(self, epoch: int) -> float:
        return self.lr


@dataclass(frozen=True)
class StepLR(LRSchedule):
    """Multiply the rate by ``gamma`` every ``step`` epochs."""

    lr: float
    step: int = 10
    gamma: float = 0.1

    def __post_init__(self) -> None:
        if self.lr <= 0 or self.step < 1 or not (0 < self.gamma <= 1):
            raise ValueError("bad StepLR parameters")

    def rate(self, epoch: int) -> float:
        return self.lr * self.gamma ** (epoch // self.step)


@dataclass(frozen=True)
class CosineLR(LRSchedule):
    """Cosine annealing from ``lr`` to ``lr_min`` over ``total`` epochs."""

    lr: float
    total: int
    lr_min: float = 0.0

    def __post_init__(self) -> None:
        if self.lr <= 0 or self.total < 1 or self.lr_min < 0:
            raise ValueError("bad CosineLR parameters")

    def rate(self, epoch: int) -> float:
        t = min(epoch, self.total) / self.total
        return self.lr_min + 0.5 * (self.lr - self.lr_min) * (1 + math.cos(math.pi * t))


@dataclass
class EarlyStopping:
    """Stop when the monitored metric hasn't improved for ``patience``
    epochs.  Monitors test accuracy when available, else training loss."""

    patience: int = 5
    min_delta: float = 0.0
    _best: float = field(default=-math.inf, repr=False)
    _stale: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.patience < 1:
            raise ValueError("patience must be >= 1")

    def update(self, metric: float) -> bool:
        """Feed this epoch's metric (higher is better); True = stop now."""
        if metric > self._best + self.min_delta:
            self._best = metric
            self._stale = 0
            return False
        self._stale += 1
        return self._stale >= self.patience


@dataclass(frozen=True)
class TrainerCheckpoint:
    """In-memory snapshot of a :class:`Trainer`'s mutable training state.

    Holds deep copies of every model parameter and the optimizer's slot
    state (momentum velocities, Adam moments/step count), so restoring
    resumes the run exactly as it was — the restore path the
    :class:`~repro.robustness.divergence.DivergenceGuard` rollback and
    checkpointing users both need.
    """

    epoch: int
    params: tuple[np.ndarray, ...]
    opt_arrays: dict[str, tuple[np.ndarray, ...]]
    opt_scalars: dict[str, float | int]


# Optimizer slot state captured by Trainer.checkpoint: per-parameter
# array lists and plain counters (Momentum._velocity, Adam._m/_v/_t).
_OPT_ARRAY_SLOTS = ("_velocity", "_m", "_v")
_OPT_SCALAR_SLOTS = ("_t",)


def clip_gradients(params, max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = math.sqrt(sum(float((p.grad**2).sum()) for p in params))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for p in params:
            p.grad *= scale
    return total


class Trainer:
    """Composable training loop around a :class:`Sequential` model.

    Parameters
    ----------
    model, optimizer, loss:
        The usual trio; optimizer defaults to SGD at the schedule's rate.
    schedule:
        An :class:`LRSchedule`; the optimizer's ``lr`` is set from it at
        the start of every epoch.
    early_stopping:
        Optional :class:`EarlyStopping` monitor.
    grad_clip:
        Optional global-norm gradient clip applied before each step.
    epoch_callback:
        Optional ``fn(epoch_index, history)`` invoked after each epoch
        (checkpointing hook).
    divergence_guard:
        Optional :class:`~repro.robustness.divergence.DivergenceGuard`.
        When set, every epoch's mean loss and parameters are health
        checked; a diverged epoch is rolled back to the last healthy
        checkpoint, the model's matmul backends are downgraded one
        escalation rung, and the epoch reruns (bounded — the guard aborts
        cleanly once its rollback budget is spent).
    """

    def __init__(
        self,
        model: Sequential,
        schedule: LRSchedule | None = None,
        optimizer: Optimizer | None = None,
        loss=None,
        early_stopping: EarlyStopping | None = None,
        grad_clip: float | None = None,
        epoch_callback: Callable[[int, History], None] | None = None,
        divergence_guard=None,
    ) -> None:
        self.model = model
        self.schedule = schedule or ConstantLR(0.1)
        self.optimizer = optimizer or SGD(model.parameters(),
                                          lr=self.schedule.rate(0))
        self.loss = loss or SoftmaxCrossEntropy()
        self.early_stopping = early_stopping
        self.grad_clip = grad_clip
        self.epoch_callback = epoch_callback
        self.divergence_guard = divergence_guard

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------

    def checkpoint(self, epoch: int = -1) -> TrainerCheckpoint:
        """Snapshot parameters + optimizer slot state (deep copies)."""
        opt_arrays = {
            slot: tuple(np.copy(a) for a in getattr(self.optimizer, slot))
            for slot in _OPT_ARRAY_SLOTS if hasattr(self.optimizer, slot)
        }
        opt_scalars = {
            slot: getattr(self.optimizer, slot)
            for slot in _OPT_SCALAR_SLOTS if hasattr(self.optimizer, slot)
        }
        return TrainerCheckpoint(
            epoch=epoch,
            params=tuple(np.copy(p.value) for p in self.model.parameters()),
            opt_arrays=opt_arrays,
            opt_scalars=opt_scalars,
        )

    def restore(self, checkpoint: TrainerCheckpoint) -> None:
        """Restore a :meth:`checkpoint` snapshot in place.

        Parameter values, gradients (zeroed), and optimizer slot state
        all revert; the model's backends are left untouched — they are
        runtime policy, managed by the caller (or the divergence guard).
        """
        params = self.model.parameters()
        if len(params) != len(checkpoint.params):
            raise ValueError(
                f"checkpoint has {len(checkpoint.params)} parameters, "
                f"model has {len(params)}"
            )
        for p, saved in zip(params, checkpoint.params):
            if p.value.shape != saved.shape:
                raise ValueError(
                    f"parameter shape {p.value.shape} does not match "
                    f"checkpoint shape {saved.shape}"
                )
            p.value[...] = saved
            p.zero_grad()
        for slot, arrays in checkpoint.opt_arrays.items():
            live = getattr(self.optimizer, slot)
            for buf, saved in zip(live, arrays):
                buf[...] = saved
        for slot, value in checkpoint.opt_scalars.items():
            setattr(self.optimizer, slot, value)

    def plan_stats(self) -> dict:
        """Plan-cache and thread-pool counters for this model's backends.

        Walks the model's layer backends (unwrapping guards), resolves
        each one's plan cache (the shared process default unless a layer
        was given a private cache), and returns the deduplicated cache
        stats plus the persistent worker-pool counters — the numbers the
        hot-path bench reports.  Every backend kind that plans is
        covered: sequential and non-stationary
        :class:`~repro.core.backend.APABackend` layers and
        engine-built backends
        (:meth:`~repro.core.engine.ExecutionEngine.backend`) all expose
        the same ``plan_cache`` knob.
        """
        from repro.core.plan import resolve_plan_cache
        from repro.parallel.pool import pool_stats

        caches = []
        for layer in getattr(self.model, "layers", []):
            backend = getattr(layer, "backend", None)
            if backend is None:
                continue
            backend = getattr(backend, "inner", backend)  # unwrap guards
            if not hasattr(backend, "plan_cache"):
                continue  # classical backends never plan
            try:
                cache = resolve_plan_cache(backend.plan_cache)
            except TypeError:
                continue
            if cache is not None and all(cache is not c for c in caches):
                caches.append(cache)
        return {
            "plan_caches": [cache.stats() for cache in caches],
            "pool": pool_stats(),
        }

    def _train_step(self, xb: np.ndarray, yb: np.ndarray) -> tuple[float, int]:
        """One forward/backward/update; returns (batch loss, # correct)."""
        logits = self.model.forward(xb, training=True)
        loss = self.loss.forward(logits, yb)
        self.optimizer.zero_grad()
        self.model.backward(self.loss.backward())
        if self.grad_clip is not None:
            clip_gradients(self.optimizer.params, self.grad_clip)
        self.optimizer.step()
        return loss, int((np.argmax(logits, axis=1) == yb).sum())

    def _run_epoch(self, x_train: np.ndarray, y_train: np.ndarray,
                   order: np.ndarray,
                   batch_size: int) -> tuple[float, int, int]:
        """All batches of one epoch; returns (loss sum, correct, batches)."""
        tracer = _obs_tracer.ACTIVE
        total_loss, correct, batches = 0.0, 0, 0
        for start in range(0, x_train.shape[0], batch_size):
            idx = order[start : start + batch_size]
            xb, yb = x_train[idx], y_train[idx]
            if tracer is None:
                loss, ok = self._train_step(xb, yb)
            else:
                with tracer.span("train.step", cat="nn", batch=batches,
                                 size=int(len(idx))):
                    loss, ok = self._train_step(xb, yb)
            total_loss += loss
            correct += ok
            batches += 1
        return total_loss, correct, batches

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        epochs: int,
        batch_size: int,
        x_test: np.ndarray | None = None,
        y_test: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
    ) -> History:
        if epochs < 1 or batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        if x_train.shape[0] != y_train.shape[0]:
            raise ValueError("x/y sample counts differ")
        rng = rng or np.random.default_rng(0)
        history = History()
        n = x_train.shape[0]

        if self.divergence_guard is not None:
            self.divergence_guard.on_train_begin(self)

        epoch = 0
        retry_order = None
        while epoch < epochs:
            self.optimizer.lr = self.schedule.rate(epoch)
            # A rolled-back epoch reruns with the same permutation it
            # failed with, keeping the rng stream — and therefore the
            # whole post-recovery trajectory — aligned with a run that
            # never faulted.
            order = retry_order if retry_order is not None else rng.permutation(n)
            retry_order = None
            tracer = _obs_tracer.ACTIVE
            t0 = time.perf_counter()
            if tracer is None:
                total_loss, correct, batches = self._run_epoch(
                    x_train, y_train, order, batch_size)
            else:
                with tracer.span("train.epoch", cat="nn", epoch=epoch,
                                 lr=self.optimizer.lr):
                    total_loss, correct, batches = self._run_epoch(
                        x_train, y_train, order, batch_size)
            epoch_seconds = time.perf_counter() - t0
            # Counters cover *executed* epochs (rolled-back ones burned
            # real time too); history keeps only the healthy ones.
            registry = default_registry()
            registry.counter("repro_train_epochs_total").inc()
            registry.counter("repro_train_steps_total").inc(batches)
            registry.histogram("repro_train_epoch_seconds").observe(
                epoch_seconds)
            mean_loss = total_loss / batches
            if self.divergence_guard is not None:
                verdict = self.divergence_guard.check(self, epoch, mean_loss)
                if verdict == "rollback":
                    retry_order = order
                    continue  # state recovered — rerun this epoch
                if verdict == "abort":
                    break
            history.train_loss.append(mean_loss)
            history.train_accuracy.append(correct / n)
            history.epoch_seconds.append(epoch_seconds)
            if x_test is not None and y_test is not None:
                history.test_accuracy.append(self.model.accuracy(x_test, y_test))
            if self.epoch_callback is not None:
                self.epoch_callback(epoch, history)
            if self.early_stopping is not None:
                metric = (history.test_accuracy[-1] if history.test_accuracy
                          else -history.train_loss[-1])
                if self.early_stopping.update(metric):
                    break
            epoch += 1
        return history
