"""Richer training infrastructure (Trainer, schedules, callbacks).

:class:`~repro.nn.model.Sequential.fit` covers the paper's fixed-LR SGD
protocol; downstream training wants learning-rate schedules, early
stopping, gradient clipping and checkpoints.  The :class:`Trainer` here
composes those around the same forward/backward core, so APA backends
flow through unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import History, Sequential
from repro.nn.optim import SGD, Optimizer

__all__ = [
    "LRSchedule",
    "ConstantLR",
    "StepLR",
    "CosineLR",
    "EarlyStopping",
    "Trainer",
    "clip_gradients",
]


class LRSchedule:
    """Maps epoch index (0-based) to a learning rate."""

    def rate(self, epoch: int) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantLR(LRSchedule):
    lr: float

    def __post_init__(self) -> None:
        if self.lr <= 0:
            raise ValueError("lr must be positive")

    def rate(self, epoch: int) -> float:
        return self.lr


@dataclass(frozen=True)
class StepLR(LRSchedule):
    """Multiply the rate by ``gamma`` every ``step`` epochs."""

    lr: float
    step: int = 10
    gamma: float = 0.1

    def __post_init__(self) -> None:
        if self.lr <= 0 or self.step < 1 or not (0 < self.gamma <= 1):
            raise ValueError("bad StepLR parameters")

    def rate(self, epoch: int) -> float:
        return self.lr * self.gamma ** (epoch // self.step)


@dataclass(frozen=True)
class CosineLR(LRSchedule):
    """Cosine annealing from ``lr`` to ``lr_min`` over ``total`` epochs."""

    lr: float
    total: int
    lr_min: float = 0.0

    def __post_init__(self) -> None:
        if self.lr <= 0 or self.total < 1 or self.lr_min < 0:
            raise ValueError("bad CosineLR parameters")

    def rate(self, epoch: int) -> float:
        t = min(epoch, self.total) / self.total
        return self.lr_min + 0.5 * (self.lr - self.lr_min) * (1 + math.cos(math.pi * t))


@dataclass
class EarlyStopping:
    """Stop when the monitored metric hasn't improved for ``patience``
    epochs.  Monitors test accuracy when available, else training loss."""

    patience: int = 5
    min_delta: float = 0.0
    _best: float = field(default=-math.inf, repr=False)
    _stale: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.patience < 1:
            raise ValueError("patience must be >= 1")

    def update(self, metric: float) -> bool:
        """Feed this epoch's metric (higher is better); True = stop now."""
        if metric > self._best + self.min_delta:
            self._best = metric
            self._stale = 0
            return False
        self._stale += 1
        return self._stale >= self.patience


def clip_gradients(params, max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = math.sqrt(sum(float((p.grad**2).sum()) for p in params))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for p in params:
            p.grad *= scale
    return total


class Trainer:
    """Composable training loop around a :class:`Sequential` model.

    Parameters
    ----------
    model, optimizer, loss:
        The usual trio; optimizer defaults to SGD at the schedule's rate.
    schedule:
        An :class:`LRSchedule`; the optimizer's ``lr`` is set from it at
        the start of every epoch.
    early_stopping:
        Optional :class:`EarlyStopping` monitor.
    grad_clip:
        Optional global-norm gradient clip applied before each step.
    epoch_callback:
        Optional ``fn(epoch_index, history)`` invoked after each epoch
        (checkpointing hook).
    """

    def __init__(
        self,
        model: Sequential,
        schedule: LRSchedule | None = None,
        optimizer: Optimizer | None = None,
        loss=None,
        early_stopping: EarlyStopping | None = None,
        grad_clip: float | None = None,
        epoch_callback: Callable[[int, History], None] | None = None,
    ) -> None:
        self.model = model
        self.schedule = schedule or ConstantLR(0.1)
        self.optimizer = optimizer or SGD(model.parameters(),
                                          lr=self.schedule.rate(0))
        self.loss = loss or SoftmaxCrossEntropy()
        self.early_stopping = early_stopping
        self.grad_clip = grad_clip
        self.epoch_callback = epoch_callback

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        epochs: int,
        batch_size: int,
        x_test: np.ndarray | None = None,
        y_test: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
    ) -> History:
        if epochs < 1 or batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        if x_train.shape[0] != y_train.shape[0]:
            raise ValueError("x/y sample counts differ")
        rng = rng or np.random.default_rng(0)
        history = History()
        n = x_train.shape[0]

        for epoch in range(epochs):
            self.optimizer.lr = self.schedule.rate(epoch)
            order = rng.permutation(n)
            total_loss, correct, batches = 0.0, 0, 0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                xb, yb = x_train[idx], y_train[idx]
                logits = self.model.forward(xb, training=True)
                total_loss += self.loss.forward(logits, yb)
                self.optimizer.zero_grad()
                self.model.backward(self.loss.backward())
                if self.grad_clip is not None:
                    clip_gradients(self.optimizer.params, self.grad_clip)
                self.optimizer.step()
                correct += int((np.argmax(logits, axis=1) == yb).sum())
                batches += 1
            history.train_loss.append(total_loss / batches)
            history.train_accuracy.append(correct / n)
            history.epoch_seconds.append(0.0)
            if x_test is not None and y_test is not None:
                history.test_accuracy.append(self.model.accuracy(x_test, y_test))
            if self.epoch_callback is not None:
                self.epoch_callback(epoch, history)
            if self.early_stopping is not None:
                metric = (history.test_accuracy[-1] if history.test_accuracy
                          else -history.train_loss[-1])
                if self.early_stopping.update(metric):
                    break
        return history
