"""Simulated per-batch training time of dense networks (Figs 6-7).

One SGD step on a Dense layer with weight ``(f_in, f_out)`` and batch
``b`` performs three products (all through the layer's backend, §4.1):

- forward        ``X @ W``        -> dims ``<b, f_in, f_out>``
- input gradient ``dY @ W^T``     -> dims ``<b, f_out, f_in>``
- weight gradient``X^T @ dY``     -> dims ``<f_in, b, f_out>``

plus bandwidth-bound elementwise work (activation forward/backward, bias,
and the SGD weight update).  This module prices a whole training step by
composing the machine model over those pieces — the same gemm/addition
models the standalone Fig-3 simulation uses, so the dilution of matmul
speedups by elementwise work (25% -> 13% in the paper's headline) emerges
naturally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.bandwidth import BandwidthModel
from repro.machine.spec import MachineSpec, paper_machine
from repro.parallel.simulator import simulate_classical, simulate_fast

__all__ = [
    "DenseLayerSpec",
    "LayerStepTiming",
    "StepTiming",
    "simulate_training_step",
    "mlp_step_timing",
    "vgg_fc_step_timing",
]


@dataclass(frozen=True)
class DenseLayerSpec:
    """One dense layer for timing purposes.

    ``algorithm`` is ``None`` for classical gemm or an
    :class:`~repro.algorithms.spec.AlgorithmLike` for a fast product.
    """

    in_features: int
    out_features: int
    algorithm: object | None = None

    def __post_init__(self) -> None:
        if self.in_features < 1 or self.out_features < 1:
            raise ValueError("feature counts must be positive")


@dataclass(frozen=True)
class LayerStepTiming:
    """Per-layer breakdown of one training step (seconds)."""

    spec: DenseLayerSpec
    t_forward: float
    t_grad_input: float
    t_grad_weight: float
    t_elementwise: float

    @property
    def total(self) -> float:
        return self.t_forward + self.t_grad_input + self.t_grad_weight + self.t_elementwise

    @property
    def matmul_total(self) -> float:
        return self.t_forward + self.t_grad_input + self.t_grad_weight


@dataclass(frozen=True)
class StepTiming:
    """Whole-network training-step timing."""

    layers: tuple[LayerStepTiming, ...]
    threads: int
    batch: int

    @property
    def total(self) -> float:
        return sum(layer.total for layer in self.layers)

    @property
    def matmul_total(self) -> float:
        return sum(layer.matmul_total for layer in self.layers)


def _product_time(M, N, K, algorithm, threads, spec, strategy, dtype_bytes):
    if algorithm is None:
        return simulate_classical(M, N, K, threads=threads, spec=spec).total
    return simulate_fast(
        algorithm, M, N, K, threads=threads, strategy=strategy,
        spec=spec, dtype_bytes=dtype_bytes,
    ).total


def simulate_training_step(
    layers: list[DenseLayerSpec],
    batch: int,
    threads: int = 1,
    spec: MachineSpec | None = None,
    strategy: str = "hybrid",
    dtype_bytes: int = 4,
) -> StepTiming:
    """Price one batched-SGD step of a dense stack.

    Elementwise traffic per layer (bytes, all streamed at the machine's
    bandwidth): activation forward + backward (4 passes over the
    ``batch x out`` tensor), bias update, and the three-array SGD weight
    update (read W, read grad, write W).
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    spec = spec or paper_machine()
    bw = BandwidthModel(spec)

    out_layers = []
    for layer in layers:
        f_in, f_out, alg = layer.in_features, layer.out_features, layer.algorithm
        t_fwd = _product_time(batch, f_in, f_out, alg, threads, spec, strategy, dtype_bytes)
        t_dx = _product_time(batch, f_out, f_in, alg, threads, spec, strategy, dtype_bytes)
        t_dw = _product_time(f_in, batch, f_out, alg, threads, spec, strategy, dtype_bytes)
        act_bytes = 4 * batch * f_out * dtype_bytes
        update_bytes = 3 * f_in * f_out * dtype_bytes + 3 * f_out * dtype_bytes
        t_elem = bw.time(act_bytes + update_bytes, threads)
        out_layers.append(
            LayerStepTiming(layer, t_fwd, t_dx, t_dw, t_elem)
        )
    return StepTiming(layers=tuple(out_layers), threads=threads, batch=batch)


def mlp_step_timing(
    hidden_size: int,
    algorithm=None,
    hidden_layers: int = 4,
    batch: int | None = None,
    input_size: int = 784,
    num_classes: int = 10,
    threads: int = 1,
    spec: MachineSpec | None = None,
    strategy: str = "hybrid",
) -> StepTiming:
    """Fig-6 configuration: ParaDnn MLP, batch matched to hidden size.

    ``algorithm`` is installed on the hidden-to-hidden layers only (input
    and output layers always classical, §4.3).
    """
    batch = hidden_size if batch is None else batch
    layers = [DenseLayerSpec(input_size, hidden_size, None)]
    layers += [
        DenseLayerSpec(hidden_size, hidden_size, algorithm)
        for _ in range(hidden_layers - 1)
    ]
    layers.append(DenseLayerSpec(hidden_size, num_classes, None))
    return simulate_training_step(
        layers, batch=batch, threads=threads, spec=spec, strategy=strategy
    )


def vgg_fc_step_timing(
    batch: int,
    algorithm=None,
    threads: int = 1,
    spec: MachineSpec | None = None,
    strategy: str = "hybrid",
) -> StepTiming:
    """Fig-7 configuration: the VGG-19 FC head (25088-4096-4096-1000).

    ``algorithm`` (the paper uses ``<4,4,2>``) is installed on all three
    FC layers.
    """
    from repro.nn.vgg import VGG19_FC_SIZES

    in_dim, fc1, fc2, out_dim = VGG19_FC_SIZES
    layers = [
        DenseLayerSpec(in_dim, fc1, algorithm),
        DenseLayerSpec(fc1, fc2, algorithm),
        DenseLayerSpec(fc2, out_dim, algorithm),
    ]
    return simulate_training_step(
        layers, batch=batch, threads=threads, spec=spec, strategy=strategy
    )
