"""The :class:`Sequential` container and training loop.

The loop mirrors the paper's §4.2 protocol: batched SGD, per-epoch
training accuracy/loss and test accuracy recorded into a
:class:`History` — the data series of Figs 5a/5b.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.nn.layers import Layer, Parameter
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.optim import Optimizer, SGD

__all__ = ["Sequential", "History"]


@dataclass
class History:
    """Per-epoch training record (the Fig-5 series)."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    test_accuracy: list[float] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.train_loss)

    def final(self) -> dict[str, float]:
        """Last-epoch summary for reporting."""
        if not self.epochs:
            raise ValueError("no epochs recorded")
        out = {
            "train_loss": self.train_loss[-1],
            "train_accuracy": self.train_accuracy[-1],
        }
        if self.test_accuracy:
            out["test_accuracy"] = self.test_accuracy[-1]
        return out


class Sequential:
    """A plain feed-forward stack of layers."""

    def __init__(self, layers: list[Layer]) -> None:
        if not layers:
            raise ValueError("model needs at least one layer")
        self.layers = list(layers)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray, batch_size: int = 1024) -> np.ndarray:
        """Class predictions without storing training caches."""
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            logits = self.forward(x[start : start + batch_size], training=False)
            outputs.append(np.argmax(logits, axis=1))
        return np.concatenate(outputs)

    def accuracy(self, x: np.ndarray, y: np.ndarray, batch_size: int = 1024) -> float:
        return float(np.mean(self.predict(x, batch_size) == y))

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        epochs: int,
        batch_size: int,
        lr: float = 0.1,
        optimizer: Optimizer | None = None,
        loss=None,
        x_test: np.ndarray | None = None,
        y_test: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
        verbose: bool = False,
    ) -> History:
        """Batched-SGD training, paper §4.2 protocol.

        Shuffles every epoch; records train loss/accuracy (running over
        the epoch's batches) and, when a test set is given, test accuracy
        per epoch.
        """
        if epochs < 1 or batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        if x_train.shape[0] != y_train.shape[0]:
            raise ValueError("x/y sample counts differ")
        rng = rng or np.random.default_rng(0)
        loss = loss or SoftmaxCrossEntropy()
        optimizer = optimizer or SGD(self.parameters(), lr=lr)
        history = History()
        n = x_train.shape[0]

        for epoch in range(epochs):
            t0 = time.perf_counter()
            order = rng.permutation(n)
            total_loss = 0.0
            total_correct = 0
            batches = 0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                xb, yb = x_train[idx], y_train[idx]
                logits = self.forward(xb, training=True)
                batch_loss = loss.forward(logits, yb)
                optimizer.zero_grad()
                self.backward(loss.backward())
                optimizer.step()
                total_loss += batch_loss
                total_correct += int((np.argmax(logits, axis=1) == yb).sum())
                batches += 1
            history.train_loss.append(total_loss / batches)
            history.train_accuracy.append(total_correct / n)
            if x_test is not None and y_test is not None:
                history.test_accuracy.append(self.accuracy(x_test, y_test))
            history.epoch_seconds.append(time.perf_counter() - t0)
            if verbose:
                msg = (
                    f"epoch {epoch + 1}/{epochs}: "
                    f"loss={history.train_loss[-1]:.4f} "
                    f"train_acc={history.train_accuracy[-1]:.4f}"
                )
                if history.test_accuracy:
                    msg += f" test_acc={history.test_accuracy[-1]:.4f}"
                print(msg)
        return history

    def __repr__(self) -> str:
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential([{inner}])"
