"""Weight initializers."""

from __future__ import annotations

import numpy as np

__all__ = ["he_normal", "glorot_uniform", "zeros", "get_initializer"]


def he_normal(rng: np.random.Generator, fan_in: int, shape, dtype=np.float32) -> np.ndarray:
    """He et al. initialization — the right scale for ReLU networks."""
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(dtype)


def glorot_uniform(rng: np.random.Generator, fan_in: int, shape, dtype=np.float32) -> np.ndarray:
    """Glorot/Xavier uniform — for sigmoid/tanh networks."""
    fan_out = int(np.prod(shape)) // fan_in if fan_in else int(np.prod(shape))
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(dtype)


def zeros(rng: np.random.Generator, fan_in: int, shape, dtype=np.float32) -> np.ndarray:
    return np.zeros(shape, dtype=dtype)


_INITIALIZERS = {
    "he": he_normal,
    "glorot": glorot_uniform,
    "zeros": zeros,
}


def get_initializer(name: str):
    """Resolve an initializer by name (``'he'``, ``'glorot'``, ``'zeros'``)."""
    try:
        return _INITIALIZERS[name]
    except KeyError:
        raise ValueError(
            f"unknown initializer {name!r}; available: {sorted(_INITIALIZERS)}"
        ) from None
