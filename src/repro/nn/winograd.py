"""Winograd convolution F(2x2, 3x3) — the conv-native fast algorithm.

The paper accelerates convolutions indirectly (im2col + fast matmul,
§1); the convolution-*native* analogue is Winograd's minimal filtering:
a 2x2 output tile of a 3x3 convolution costs 16 multiplications instead
of 36 (2.25x fewer), via the transforms (Lavin & Gray 2016 notation)

    Y = A^T [ (G g G^T) (.) (B^T d B) ] A

with the 4x4 input tile ``d``, 3x3 kernel ``g``, elementwise product
``(.)``, and

    B^T = [[1, 0, -1, 0],          G = [[1,    0,   0  ],
           [0, 1,  1, 0],               [1/2,  1/2, 1/2],
           [0, -1, 1, 0],               [1/2, -1/2, 1/2],
           [0, 1,  0, -1]]              [0,    0,   1  ]]

    A^T = [[1, 1,  1,  0],
           [0, 1, -1, -1]]

Exact in exact arithmetic (the transforms' entries are dyadic rationals)
— unlike APA rules there is no approximation parameter; it trades
multiplications for cheap additions just like Strassen does for matmul.
Multi-channel/multi-filter is handled by summing the transformed domain
over input channels — which is itself a batched matmul over the 16 tile
positions, so APA backends could plug in *there* for very wide layers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["winograd_conv2d_3x3", "direct_conv2d_valid", "WINOGRAD_MULS_RATIO"]

_BT = np.array([
    [1, 0, -1, 0],
    [0, 1, 1, 0],
    [0, -1, 1, 0],
    [0, 1, 0, -1],
], dtype=np.float64)
_G = np.array([
    [1.0, 0.0, 0.0],
    [0.5, 0.5, 0.5],
    [0.5, -0.5, 0.5],
    [0.0, 0.0, 1.0],
], dtype=np.float64)
_AT = np.array([
    [1, 1, 1, 0],
    [0, 1, -1, -1],
], dtype=np.float64)

#: Multiplication ratio vs direct convolution: 16 per 2x2 tile vs 36.
WINOGRAD_MULS_RATIO = 16 / 36


def direct_conv2d_valid(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Reference valid 3x3 convolution (cross-correlation convention).

    ``x``: ``(batch, c_in, H, W)``; ``w``: ``(c_out, c_in, 3, 3)``;
    returns ``(batch, c_out, H-2, W-2)``.
    """
    b, c_in, H, W = x.shape
    c_out = w.shape[0]
    if w.shape != (c_out, c_in, 3, 3):
        raise ValueError(f"kernel shape {w.shape} incompatible with input")
    if H < 3 or W < 3:
        raise ValueError("input smaller than the kernel")
    out = np.zeros((b, c_out, H - 2, W - 2), dtype=np.result_type(x, w))
    for di in range(3):
        for dj in range(3):
            patch = x[:, :, di:di + H - 2, dj:dj + W - 2]
            out += np.einsum("bchw,oc->bohw", patch, w[:, :, di, dj])
    return out


def winograd_conv2d_3x3(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Valid 3x3 convolution via F(2x2, 3x3) tiles.

    Same contract as :func:`direct_conv2d_valid`.  Odd output dims are
    handled by padding the input on the bottom/right and cropping.
    """
    b, c_in, H, W = x.shape
    c_out = w.shape[0]
    if w.shape != (c_out, c_in, 3, 3):
        raise ValueError(f"kernel shape {w.shape} incompatible with input")
    if H < 3 or W < 3:
        raise ValueError("input smaller than the kernel")
    out_h, out_w = H - 2, W - 2
    tiles_h = -(-out_h // 2)
    tiles_w = -(-out_w // 2)
    Hp, Wp = 2 * tiles_h + 2, 2 * tiles_w + 2
    if (Hp, Wp) != (H, W):
        xp = np.zeros((b, c_in, Hp, Wp), dtype=x.dtype)
        xp[:, :, :H, :W] = x
        x = xp

    dtype = np.result_type(x, w, np.float32)

    # Kernel transform: U[o, c] = G g G^T  -> (4, 4, c_out, c_in)
    U = np.einsum("ij,ocjk,lk->iloc", _G, w.astype(np.float64), _G)

    # Input tile transform: gather all 4x4 tiles with stride 2 ->
    # (4, 4, c_in, b, tiles_h, tiles_w), then V = B^T d B per tile.
    s = x.strides
    tiles = np.lib.stride_tricks.as_strided(
        x,
        shape=(b, c_in, tiles_h, tiles_w, 4, 4),
        strides=(s[0], s[1], 2 * s[2], 2 * s[3], s[2], s[3]),
        writeable=False,
    ).astype(np.float64)
    V = np.einsum("ij,bcthjk,lk->ilbcth", _BT, tiles, _BT)

    # Elementwise product in the transformed domain, summed over c_in:
    # a (c_out x c_in) @ (c_in x batch*tiles) matmul per tile position.
    M = np.einsum("iloc,ilbcth->ilboth", U, V)

    # Output transform: Y = A^T M A per tile -> (b, c_out, th, tw, 2, 2)
    Y = np.einsum("pi,ilboth,ql->bothpq", _AT, M, _AT)
    out = Y.transpose(0, 1, 2, 4, 3, 5).reshape(b, c_out, 2 * tiles_h,
                                                2 * tiles_w)
    return np.ascontiguousarray(out[:, :, :out_h, :out_w].astype(dtype))
