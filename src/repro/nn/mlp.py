"""Builders for the paper's MLP networks (Figs 4-6).

Two configurations appear in the paper:

- the **accuracy network** (§4.2, Figs 4-5): fully connected
  784-300-300-10 trained on MNIST with batch size 300; the APA operator is
  used *only* for the middle product (the 300x300 hidden-to-hidden layer,
  giving 300x300x300 multiplications) in both forward and backward passes,
  while input and output layers use classical gemm;
- the **performance network** (§4.3, Fig 6): a ParaDnn-style MLP with 4
  hidden layers of ``h`` nodes each and batch size matched to ``h`` so the
  hidden products are square ``h x h x h``; APA operators are used in all
  hidden-layer products, classical in the input/output layers.
"""

from __future__ import annotations

import numpy as np

from repro.core.backend import ClassicalBackend, MatmulBackend
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential

__all__ = ["build_accuracy_mlp", "build_paradnn_mlp", "hidden_dense_layers"]


def build_accuracy_mlp(
    hidden_backend: MatmulBackend | None = None,
    input_size: int = 784,
    hidden_size: int = 300,
    num_classes: int = 10,
    rng: np.random.Generator | None = None,
) -> Sequential:
    """The 784-300-300-10 MLP of Fig 4.

    ``hidden_backend`` (APA or classical) is installed on the middle
    ``hidden x hidden`` layer only, exactly as in §4.2; the input and
    output layers always use classical gemm.
    """
    rng = rng or np.random.default_rng(0)
    hidden_backend = hidden_backend or ClassicalBackend()
    return Sequential([
        Dense(input_size, hidden_size, backend=ClassicalBackend(), rng=rng),
        ReLU(),
        Dense(hidden_size, hidden_size, backend=hidden_backend, rng=rng),
        ReLU(),
        Dense(hidden_size, num_classes, backend=ClassicalBackend(), rng=rng),
    ])


def build_paradnn_mlp(
    hidden_size: int,
    hidden_layers: int = 4,
    hidden_backend: MatmulBackend | None = None,
    input_size: int = 784,
    num_classes: int = 10,
    rng: np.random.Generator | None = None,
) -> Sequential:
    """The ParaDnn-style performance MLP of §4.3 (6 layers, 4 hidden).

    All ``hidden x hidden`` layers share ``hidden_backend``; the
    input-to-hidden and hidden-to-output layers use classical gemm, per
    the paper ("the standard operation was used in the input and output
    layers").
    """
    if hidden_layers < 1:
        raise ValueError("need at least one hidden layer")
    rng = rng or np.random.default_rng(0)
    hidden_backend = hidden_backend or ClassicalBackend()
    layers: list = [Dense(input_size, hidden_size, backend=ClassicalBackend(), rng=rng), ReLU()]
    for _ in range(hidden_layers - 1):
        layers.append(Dense(hidden_size, hidden_size, backend=hidden_backend, rng=rng))
        layers.append(ReLU())
    layers.append(Dense(hidden_size, num_classes, backend=ClassicalBackend(), rng=rng))
    return Sequential(layers)


def hidden_dense_layers(model: Sequential) -> list[Dense]:
    """The square hidden-to-hidden Dense layers of a builder's model."""
    dense = [layer for layer in model.layers if isinstance(layer, Dense)]
    return [d for d in dense[1:-1] if d.in_features == d.out_features]
