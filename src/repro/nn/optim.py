"""Optimizers updating :class:`~repro.nn.layers.Parameter` objects in place.

The paper trains with batched stochastic gradient descent (§4.2); SGD is
therefore the reference optimizer, with momentum and Adam provided for the
extension experiments.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter

__all__ = ["Optimizer", "SGD", "Momentum", "Adam"]


class Optimizer:
    """Base: holds the parameter list, dispatches per-parameter updates."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not params:
            raise ValueError("optimizer needs at least one parameter")
        self.params = list(params)
        self.lr = lr

    def step(self) -> None:
        for i, p in enumerate(self.params):
            self._update(i, p)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def _update(self, index: int, p: Parameter) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Plain batched stochastic gradient descent (the paper's setting)."""

    def _update(self, index: int, p: Parameter) -> None:
        p.value -= self.lr * p.grad


class Momentum(Optimizer):
    """SGD with classical momentum."""

    def __init__(self, params: list[Parameter], lr: float, momentum: float = 0.9) -> None:
        super().__init__(params, lr)
        if not (0.0 <= momentum < 1.0):
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def _update(self, index: int, p: Parameter) -> None:
        v = self._velocity[index]
        v *= self.momentum
        v -= self.lr * p.grad
        p.value += v


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        super().step()

    def _update(self, index: int, p: Parameter) -> None:
        m, v = self._m[index], self._v[index]
        m *= self.beta1
        m += (1 - self.beta1) * p.grad
        v *= self.beta2
        v += (1 - self.beta2) * p.grad**2
        m_hat = m / (1 - self.beta1**self._t)
        v_hat = v / (1 - self.beta2**self._t)
        p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
