"""A from-scratch NumPy neural-network library with pluggable matmul.

The paper swaps TensorFlow's matmul for custom operators inside fully
connected layers; this package provides the same seam natively: every
:class:`~repro.nn.layers.Dense` (and the im2col-based
:class:`~repro.nn.layers.Conv2D`) takes a
:class:`~repro.core.backend.MatmulBackend`, which is used for the forward
product and both backward products — exactly the three places the paper
injects APA algorithms.

Contents: layers (:mod:`layers`), losses (:mod:`losses`), optimizers
(:mod:`optim`), the :class:`~repro.nn.model.Sequential` container and
training loop (:mod:`model`), paper network builders (:mod:`mlp`,
:mod:`vgg`), and the simulated training-time accounting used by Figs 6-7
(:mod:`timing`).
"""

from repro.nn.layers import Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU, Sigmoid, Tanh
from repro.nn.losses import MSELoss, SoftmaxCrossEntropy
from repro.nn.model import History, Sequential
from repro.nn.optim import SGD, Adam, Momentum
from repro.nn.mlp import build_accuracy_mlp, build_paradnn_mlp
from repro.nn.vgg import VGG19_CONV_CONFIG, VGG19_FC_SIZES, build_vgg19_fc

__all__ = [
    "Dense", "ReLU", "Sigmoid", "Tanh", "Flatten", "Dropout", "Conv2D", "MaxPool2D",
    "SoftmaxCrossEntropy", "MSELoss",
    "Sequential", "History",
    "SGD", "Momentum", "Adam",
    "build_accuracy_mlp", "build_paradnn_mlp",
    "build_vgg19_fc", "VGG19_FC_SIZES", "VGG19_CONV_CONFIG",
]
