"""Loss functions (forward value + gradient w.r.t. the model output)."""

from __future__ import annotations

import numpy as np

__all__ = ["SoftmaxCrossEntropy", "MSELoss"]


class SoftmaxCrossEntropy:
    """Fused softmax + cross-entropy over integer class labels.

    Numerically stable (log-sum-exp with max subtraction); the gradient is
    the classic ``softmax(logits) - onehot(labels)`` averaged over the
    batch.
    """

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError("logits must be (batch, classes)")
        if labels.shape != (logits.shape[0],):
            raise ValueError(
                f"labels shape {labels.shape} does not match batch {logits.shape[0]}"
            )
        if labels.min() < 0 or labels.max() >= logits.shape[1]:
            raise ValueError("label out of range")
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        self._probs = probs
        self._labels = labels
        batch = np.arange(logits.shape[0])
        nll = -np.log(np.maximum(probs[batch, labels], 1e-30))
        return float(nll.mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._labels is None:
            raise RuntimeError("backward called before forward")
        grad = self._probs.copy()
        batch = np.arange(grad.shape[0])
        grad[batch, self._labels] -= 1.0
        return grad / grad.shape[0]


class MSELoss:
    """Mean squared error over arbitrary-shape targets."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        if prediction.shape != target.shape:
            raise ValueError(f"shape mismatch {prediction.shape} vs {target.shape}")
        diff = prediction - target
        self._diff = diff
        return float(np.mean(diff**2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size
