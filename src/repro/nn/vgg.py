"""VGG-19 (Simonyan & Zisserman) builders for the §5 experiment.

VGG-19 has 16 convolutional layers and 3 fully connected layers of
25088, 4096 and 1000 nodes.  The paper's Fig 7 times *training of the
fully connected layers only* ("per-batch training time of the fully
connected layers"), replacing classical matmul by ``<4,4,2>`` — so the
primary builder here is :func:`build_vgg19_fc`, the FC head as a
standalone trainable network fed activation tensors of width 25088.

The full convolutional specification is also provided (and buildable at
reduced input resolution for the runnable example) since the conv layers
are implemented via im2col + matmul and accept APA backends too.
"""

from __future__ import annotations

import numpy as np

from repro.core.backend import ClassicalBackend, MatmulBackend
from repro.nn.layers import Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU
from repro.nn.model import Sequential

__all__ = [
    "VGG19_CONV_CONFIG",
    "VGG19_FC_SIZES",
    "build_vgg19_fc",
    "build_vgg19_convnet",
]

#: Channel progression of VGG-19's 16 conv layers; 'M' is 2x2 max-pool.
VGG19_CONV_CONFIG: tuple = (
    64, 64, "M",
    128, 128, "M",
    256, 256, 256, 256, "M",
    512, 512, 512, 512, "M",
    512, 512, 512, 512, "M",
)

#: The fully connected head: 512*7*7 = 25088 -> 4096 -> 4096 -> 1000.
VGG19_FC_SIZES: tuple[int, int, int, int] = (25088, 4096, 4096, 1000)


def build_vgg19_fc(
    backend: MatmulBackend | None = None,
    dropout: float = 0.0,
    sizes: tuple[int, int, int, int] = VGG19_FC_SIZES,
    rng: np.random.Generator | None = None,
) -> Sequential:
    """The 3 fully connected layers of VGG-19 as a trainable head.

    ``backend`` is installed on *all three* FC layers (the §5 experiment
    replaces the classical algorithm "in these layers").  Dropout defaults
    off because Fig 7 measures time, not accuracy; pass 0.5 for the
    classic VGG configuration.
    """
    rng = rng or np.random.default_rng(0)
    backend = backend or ClassicalBackend()
    in_dim, fc1, fc2, out_dim = sizes
    layers: list = [Dense(in_dim, fc1, backend=backend, rng=rng), ReLU()]
    if dropout:
        layers.append(Dropout(dropout, rng=rng))
    layers += [Dense(fc1, fc2, backend=backend, rng=rng), ReLU()]
    if dropout:
        layers.append(Dropout(dropout, rng=rng))
    layers.append(Dense(fc2, out_dim, backend=backend, rng=rng))
    return Sequential(layers)


def build_vgg19_convnet(
    num_classes: int = 10,
    input_hw: int = 32,
    in_channels: int = 3,
    conv_backend: MatmulBackend | None = None,
    fc_backend: MatmulBackend | None = None,
    width_scale: float = 1.0,
    rng: np.random.Generator | None = None,
) -> Sequential:
    """A full VGG-19-architecture network at configurable resolution.

    At the paper's 224x224 ImageNet resolution this is far too slow for
    pure NumPy; ``input_hw=32`` with ``width_scale=0.25`` gives a runnable
    CIFAR-scale variant with the identical layer structure for the
    example scripts.  Requires ``input_hw`` divisible by 32 (five pools).
    """
    if input_hw % 32:
        raise ValueError("input_hw must be divisible by 32 (five 2x2 pools)")
    rng = rng or np.random.default_rng(0)
    conv_backend = conv_backend or ClassicalBackend()
    fc_backend = fc_backend or ClassicalBackend()

    layers: list = []
    channels = in_channels
    for item in VGG19_CONV_CONFIG:
        if item == "M":
            layers.append(MaxPool2D(2))
            continue
        out_channels = max(1, int(item * width_scale))
        layers.append(
            Conv2D(channels, out_channels, kernel_size=3, stride=1, padding=1,
                   backend=conv_backend, rng=rng)
        )
        layers.append(ReLU())
        channels = out_channels
    layers.append(Flatten())
    spatial = input_hw // 32
    feat = channels * spatial * spatial
    fc_width = max(num_classes, int(4096 * width_scale))
    layers += [
        Dense(feat, fc_width, backend=fc_backend, rng=rng), ReLU(),
        Dense(fc_width, fc_width, backend=fc_backend, rng=rng), ReLU(),
        Dense(fc_width, num_classes, backend=fc_backend, rng=rng),
    ]
    return Sequential(layers)
