"""Memory-mapped matrix storage for the out-of-core shard path.

Thin, dependency-free wrappers over the ``.npy`` format: the shard
layer (:mod:`repro.shard`) needs matrices that live on disk and are
read window-by-window, and tests need a one-liner to materialize
them.  ``.npy`` keeps the dtype/shape header with the data, so an
opened operand needs no side-channel metadata.
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

__all__ = ["save_matrix", "open_matrix", "create_matrix"]


def save_matrix(path: Any, array: np.ndarray) -> str:
    """Write ``array`` to ``path`` as ``.npy``; returns the path."""
    path = os.fspath(path)
    np.save(path, np.asarray(array))
    return path


def open_matrix(path: Any, mode: str = "r") -> np.memmap:
    """Open a ``.npy`` file memory-mapped (default read-only).

    Slicing the result reads only the touched windows from disk —
    exactly the access pattern of the shard loop.
    """
    return np.load(os.fspath(path), mmap_mode=mode)


def create_matrix(path: Any, shape: tuple[int, ...],
                  dtype: Any = np.float64) -> np.memmap:
    """Create a writable ``.npy`` memmap of ``shape`` (zero-filled by
    the OS); flush() when done writing."""
    return np.lib.format.open_memmap(
        os.fspath(path), mode="w+", dtype=np.dtype(dtype), shape=shape)
