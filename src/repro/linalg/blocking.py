"""Block partitioning, padding and (re)assembly of NumPy operands.

A fixed-size bilinear rule for ``<m, n, k>`` applies recursively to general
matrices by splitting ``A`` into an ``m x n`` grid of equal blocks, ``B``
into ``n x k``, and producing ``C`` as ``m x k`` blocks.  Real problem sizes
are rarely divisible by the rule dims, so operands are zero-padded up to the
next multiple (per recursive level) and the result is cropped back — the
standard practice in fast-matmul implementations and what the paper's
framework (Benson & Ballard) does.

Functions here deliberately return *views* wherever NumPy allows (the
``reshape/swapaxes`` trick for an even split is a view; only padding copies)
— per the memory guidance of the HPC Python guides.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BlockPartition", "pad_to_multiple", "split_blocks", "join_blocks"]


def required_padding(dim: int, divisor: int, steps: int = 1) -> int:
    """Smallest ``p >= dim`` divisible by ``divisor**steps``.

    One padded size covers all recursion levels: after each split by
    ``divisor`` the block size remains divisible by the remaining levels.
    """
    if dim < 1:
        raise ValueError(f"dimension must be positive, got {dim}")
    if divisor < 1 or steps < 0:
        raise ValueError("divisor must be >= 1 and steps >= 0")
    unit = divisor**steps
    return ((dim + unit - 1) // unit) * unit


def pad_to_multiple(X: np.ndarray, row_div: int, col_div: int, steps: int = 1) -> np.ndarray:
    """Zero-pad a 2-D array so each dim divides ``div**steps``.

    Returns ``X`` itself (no copy) when already aligned.
    """
    if X.ndim != 2:
        raise ValueError("expected a 2-D array")
    rows, cols = X.shape
    pr = required_padding(rows, row_div, steps)
    pc = required_padding(cols, col_div, steps)
    if pr == rows and pc == cols:
        return X
    out = np.zeros((pr, pc), dtype=X.dtype)
    out[:rows, :cols] = X
    return out


def split_blocks(X: np.ndarray, grid_rows: int, grid_cols: int) -> list[list[np.ndarray]]:
    """Split a 2-D array into a ``grid_rows x grid_cols`` grid of views.

    The array shape must be divisible by the grid.  Each returned block is a
    contiguous-strided *view* into ``X`` (no copies), so writes through a
    block alias the parent.
    """
    rows, cols = X.shape
    if rows % grid_rows or cols % grid_cols:
        raise ValueError(
            f"shape {X.shape} not divisible by grid {grid_rows}x{grid_cols}"
        )
    br, bc = rows // grid_rows, cols // grid_cols
    return [
        [X[i * br : (i + 1) * br, j * bc : (j + 1) * bc] for j in range(grid_cols)]
        for i in range(grid_rows)
    ]


def join_blocks(blocks: list[list[np.ndarray]]) -> np.ndarray:
    """Assemble a grid of equal-shape blocks into one matrix (copies)."""
    if not blocks or not blocks[0]:
        raise ValueError("empty block grid")
    return np.block(blocks)


@dataclass(frozen=True)
class BlockPartition:
    """Plan for applying an ``<m, n, k>`` rule to a concrete problem.

    Attributes
    ----------
    m, n, k:
        Rule dims.
    rows_a, cols_a, cols_b:
        Original problem dims (``A`` is ``rows_a x cols_a``, ``B`` is
        ``cols_a x cols_b``).
    steps:
        Number of recursive levels the padding must support.
    """

    m: int
    n: int
    k: int
    rows_a: int
    cols_a: int
    cols_b: int
    steps: int = 1

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) < 1:
            raise ValueError("rule dims must be positive")
        if min(self.rows_a, self.cols_a, self.cols_b) < 1:
            raise ValueError("problem dims must be positive")
        if self.steps < 1:
            raise ValueError("steps must be >= 1")

    @property
    def padded_rows_a(self) -> int:
        return required_padding(self.rows_a, self.m, self.steps)

    @property
    def padded_cols_a(self) -> int:
        return required_padding(self.cols_a, self.n, self.steps)

    @property
    def padded_cols_b(self) -> int:
        return required_padding(self.cols_b, self.k, self.steps)

    @property
    def pad_overhead(self) -> float:
        """Fractional extra flops introduced by padding (0 when aligned)."""
        orig = self.rows_a * self.cols_a * self.cols_b
        padded = self.padded_rows_a * self.padded_cols_a * self.padded_cols_b
        return padded / orig - 1.0

    def prepare(self, A: np.ndarray, B: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Pad the operands; validates shapes against the plan."""
        if A.shape != (self.rows_a, self.cols_a):
            raise ValueError(f"A has shape {A.shape}, plan expects "
                             f"({self.rows_a},{self.cols_a})")
        if B.shape != (self.cols_a, self.cols_b):
            raise ValueError(f"B has shape {B.shape}, plan expects "
                             f"({self.cols_a},{self.cols_b})")
        Ap = pad_to_multiple(A, self.m, self.n, self.steps)
        Bp = pad_to_multiple(B, self.n, self.k, self.steps)
        return Ap, Bp

    def crop(self, C_padded: np.ndarray) -> np.ndarray:
        """Crop a padded result back to the original output shape."""
        return C_padded[: self.rows_a, : self.cols_b]
