"""The matrix-multiplication tensor and exact trilinear contractions.

A bilinear matrix-multiplication algorithm for dims ``<m, n, k>`` (``A`` is
``m x n``, ``B`` is ``n x k``, ``C = A @ B`` is ``m x k``) is a rank-``r``
decomposition of the order-3 *matmul tensor* ``T``:

    T[p, s, q] = sum_i U[p, i] * V[s, i] * W[q, i]

where ``p`` indexes the ``m*n`` entries of ``A`` (row-major), ``s`` the
``n*k`` entries of ``B``, and ``q`` the ``m*k`` entries of ``C``.  The entry
``T[p, s, q]`` is 1 exactly when ``A_p * B_s`` contributes (with
coefficient 1) to ``C_q`` in the classical product.

APA algorithms decompose ``T`` only up to ``O(lambda)``: the contraction
equals ``T + lambda * E + O(lambda**2)`` where the coefficients of ``U, V,
W`` are Laurent polynomials in ``lambda``.  The functions here build ``T``
exactly and contract Laurent-valued factor matrices entrywise, which is what
:mod:`repro.algorithms.verify` uses to certify every catalogued algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.laurent import Laurent

__all__ = ["matmul_tensor", "triple_product_tensor", "a_index", "b_index", "c_index"]


def a_index(i: int, j: int, m: int, n: int) -> int:
    """Row-major flat index of ``A[i, j]`` for an ``m x n`` matrix."""
    if not (0 <= i < m and 0 <= j < n):
        raise IndexError(f"A index ({i},{j}) out of range for {m}x{n}")
    return i * n + j


def b_index(i: int, j: int, n: int, k: int) -> int:
    """Row-major flat index of ``B[i, j]`` for an ``n x k`` matrix."""
    if not (0 <= i < n and 0 <= j < k):
        raise IndexError(f"B index ({i},{j}) out of range for {n}x{k}")
    return i * k + j


def c_index(i: int, j: int, m: int, k: int) -> int:
    """Row-major flat index of ``C[i, j]`` for an ``m x k`` matrix."""
    if not (0 <= i < m and 0 <= j < k):
        raise IndexError(f"C index ({i},{j}) out of range for {m}x{k}")
    return i * k + j


def matmul_tensor(m: int, n: int, k: int) -> np.ndarray:
    """Build the exact ``<m, n, k>`` matmul tensor as an int8 array.

    Returns an array ``T`` of shape ``(m*n, n*k, m*k)`` with
    ``T[a_index(i, l), b_index(l, j), c_index(i, j)] = 1`` and zeros
    elsewhere.

    The tensor has exactly ``m*n*k`` ones — one per scalar multiplication of
    the classical algorithm.
    """
    if min(m, n, k) < 1:
        raise ValueError(f"dims must be positive, got <{m},{n},{k}>")
    T = np.zeros((m * n, n * k, m * k), dtype=np.int8)
    for i in range(m):
        for l in range(n):
            for j in range(k):
                T[a_index(i, l, m, n), b_index(l, j, n, k), c_index(i, j, m, k)] = 1
    return T


def triple_product_tensor(
    U: np.ndarray, V: np.ndarray, W: np.ndarray
) -> np.ndarray:
    """Contract Laurent-valued factor matrices into an order-3 tensor.

    ``U`` has shape ``(mn, r)``, ``V`` ``(nk, r)``, ``W`` ``(mk, r)``; all
    entries are :class:`~repro.linalg.laurent.Laurent`.  Returns the object
    array ``S`` with ``S[p, s, q] = sum_i U[p,i] V[s,i] W[q,i]``.

    The contraction skips zero coefficients, so sparse factor matrices (the
    common case — published algorithms have ~2-4 nonzeros per column) cost
    ``O(nnz(U) * avg_nnz_col(V) * avg_nnz_col(W))`` rather than the dense
    ``O(mn * nk * mk * r)``.
    """
    if U.ndim != 2 or V.ndim != 2 or W.ndim != 2:
        raise ValueError("factor matrices must be 2-D")
    r = U.shape[1]
    if V.shape[1] != r or W.shape[1] != r:
        raise ValueError(
            f"rank mismatch: U has {r} columns, V {V.shape[1]}, W {W.shape[1]}"
        )
    mn, nk, mk = U.shape[0], V.shape[0], W.shape[0]
    out = np.empty((mn, nk, mk), dtype=object)
    zero = Laurent.zero()
    out[...] = zero

    # Pre-extract the nonzero pattern of each column to keep the triple loop
    # proportional to actual algebraic work.
    for i in range(r):
        u_nz = [(p, U[p, i]) for p in range(mn) if U[p, i]]
        if not u_nz:
            continue
        v_nz = [(s, V[s, i]) for s in range(nk) if V[s, i]]
        if not v_nz:
            continue
        w_nz = [(q, W[q, i]) for q in range(mk) if W[q, i]]
        if not w_nz:
            continue
        for p, u in u_nz:
            for s, v in v_nz:
                uv = u * v
                if not uv:
                    continue
                for q, w in w_nz:
                    out[p, s, q] = out[p, s, q] + uv * w
    return out
