"""Exact Laurent polynomials in the APA parameter ``lambda``.

APA (Arbitrary Precision Approximating) bilinear algorithms encode each
linear-combination coefficient as a Laurent polynomial in a scalar parameter
``0 < lambda < 1`` — e.g. Bini's <3,2,2> algorithm uses coefficients drawn
from ``{±1, ±lambda, ±lambda**-1}``.  To *verify* such an algorithm we must
multiply and add these coefficients exactly, so this module implements a
small, immutable Laurent-polynomial ring over :class:`fractions.Fraction`
coefficients.

The representation is a mapping ``{exponent: coefficient}`` with all-nonzero
coefficients.  Arithmetic is exact; evaluation substitutes a concrete float
(or Fraction) for ``lambda``.

Design notes (performance): verification contracts three coefficient
matrices over every entry of the matmul tensor, which for the largest
catalogued algorithms touches a few hundred thousand Laurent products.
Operations therefore avoid intermediate object churn: products iterate the
smaller operand, sums merge dicts in place on a private copy, and the zero
polynomial is a cached singleton.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping, Union

Scalar = Union[int, float, Fraction]

__all__ = ["Laurent"]


def _as_fraction(value: Scalar) -> Fraction:
    """Convert ``value`` to an exact Fraction.

    Floats are accepted only when they are exactly representable small
    dyadics (the coefficients appearing in published algorithms are
    integers, simple fractions like 1/4, or powers of two), so
    ``Fraction(value)`` is exact.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(f"non-finite coefficient {value!r}")
        return Fraction(value)
    raise TypeError(f"unsupported coefficient type {type(value).__name__}")


class Laurent:
    """An immutable Laurent polynomial ``sum_e c_e * lambda**e``.

    Parameters
    ----------
    terms:
        Mapping from integer exponent to coefficient.  Zero coefficients
        are dropped.

    Examples
    --------
    >>> x = Laurent({1: 1})          # lambda
    >>> inv = Laurent({-1: 1})       # lambda**-1
    >>> (x * inv).is_one()
    True
    >>> (x + Laurent.one())(0.5)
    1.5
    """

    __slots__ = ("_terms", "_hash")

    def __init__(self, terms: Mapping[int, Scalar] | None = None):
        clean: dict[int, Fraction] = {}
        if terms:
            for exp, coeff in terms.items():
                if not isinstance(exp, int):
                    raise TypeError(f"exponent must be int, got {type(exp).__name__}")
                frac = _as_fraction(coeff)
                if frac:
                    clean[exp] = frac
        self._terms = clean
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    _ZERO: "Laurent | None" = None
    _ONE: "Laurent | None" = None

    @classmethod
    def zero(cls) -> "Laurent":
        """The additive identity (cached singleton)."""
        if cls._ZERO is None:
            cls._ZERO = cls({})
        return cls._ZERO

    @classmethod
    def one(cls) -> "Laurent":
        """The multiplicative identity (cached singleton)."""
        if cls._ONE is None:
            cls._ONE = cls({0: 1})
        return cls._ONE

    @classmethod
    def const(cls, value: Scalar) -> "Laurent":
        """A constant polynomial ``value * lambda**0``."""
        return cls({0: value})

    @classmethod
    def lam(cls, exponent: int = 1, coeff: Scalar = 1) -> "Laurent":
        """The monomial ``coeff * lambda**exponent``."""
        return cls({exponent: coeff})

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, Scalar]]) -> "Laurent":
        """Build from ``(exponent, coefficient)`` pairs, summing duplicates."""
        acc: dict[int, Fraction] = {}
        for exp, coeff in pairs:
            acc[exp] = acc.get(exp, Fraction(0)) + _as_fraction(coeff)
        return cls(acc)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def terms(self) -> dict[int, Fraction]:
        """A copy of the exponent→coefficient mapping."""
        return dict(self._terms)

    def coeff(self, exponent: int) -> Fraction:
        """Coefficient of ``lambda**exponent`` (0 if absent)."""
        return self._terms.get(exponent, Fraction(0))

    def is_zero(self) -> bool:
        return not self._terms

    def is_one(self) -> bool:
        return self._terms == {0: Fraction(1)}

    def is_constant(self) -> bool:
        """True when the polynomial has no lambda dependence (incl. zero)."""
        return not self._terms or set(self._terms) == {0}

    def min_exponent(self) -> int:
        """Smallest exponent with nonzero coefficient.

        Raises
        ------
        ValueError
            If the polynomial is zero (it has no exponents).
        """
        if not self._terms:
            raise ValueError("zero polynomial has no exponents")
        return min(self._terms)

    def max_exponent(self) -> int:
        """Largest exponent with nonzero coefficient."""
        if not self._terms:
            raise ValueError("zero polynomial has no exponents")
        return max(self._terms)

    def negative_degree(self) -> int:
        """``max(0, -min_exponent)``: how singular the coefficient is at 0.

        This is the per-coefficient ingredient of the algorithm parameter
        ``phi`` (the largest sum of negative exponents across a triplet).
        Zero polynomials contribute 0.
        """
        if not self._terms:
            return 0
        return max(0, -min(self._terms))

    # ------------------------------------------------------------------
    # ring operations
    # ------------------------------------------------------------------

    def __add__(self, other: "Laurent | Scalar") -> "Laurent":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        if not other._terms:
            return self
        if not self._terms:
            return other
        merged = dict(self._terms)
        for exp, coeff in other._terms.items():
            total = merged.get(exp, Fraction(0)) + coeff
            if total:
                merged[exp] = total
            else:
                merged.pop(exp, None)
        return Laurent(merged)

    __radd__ = __add__

    def __neg__(self) -> "Laurent":
        return Laurent({e: -c for e, c in self._terms.items()})

    def __sub__(self, other: "Laurent | Scalar") -> "Laurent":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other: "Laurent | Scalar") -> "Laurent":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return other + (-self)

    def __mul__(self, other: "Laurent | Scalar") -> "Laurent":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        if not self._terms or not other._terms:
            return Laurent.zero()
        a, b = self._terms, other._terms
        if len(a) > len(b):
            a, b = b, a
        acc: dict[int, Fraction] = {}
        for ea, ca in a.items():
            for eb, cb in b.items():
                exp = ea + eb
                total = acc.get(exp, Fraction(0)) + ca * cb
                if total:
                    acc[exp] = total
                else:
                    acc.pop(exp, None)
        return Laurent(acc)

    __rmul__ = __mul__

    def shift(self, delta: int) -> "Laurent":
        """Multiply by ``lambda**delta`` (exponent shift)."""
        if not delta or not self._terms:
            return self
        return Laurent({e + delta: c for e, c in self._terms.items()})

    def scale(self, factor: Scalar) -> "Laurent":
        """Multiply every coefficient by ``factor``."""
        frac = _as_fraction(factor)
        if not frac:
            return Laurent.zero()
        return Laurent({e: c * frac for e, c in self._terms.items()})

    def substitute_power(self, power: int) -> "Laurent":
        """Substitute ``lambda -> lambda**power`` (power must be >= 1).

        Used when tensoring two APA algorithms: giving the factors different
        lambda gradings keeps their error terms separable.
        """
        if power < 1:
            raise ValueError("power must be >= 1")
        if power == 1:
            return self
        return Laurent({e * power: c for e, c in self._terms.items()})

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def __call__(self, lam: float) -> float:
        """Evaluate at a concrete ``lambda`` as a float."""
        if not self._terms:
            return 0.0
        return float(sum(float(c) * lam**e for e, c in self._terms.items()))

    def evaluate_exact(self, lam: Fraction) -> Fraction:
        """Evaluate at an exact rational ``lambda``."""
        total = Fraction(0)
        for e, c in self._terms.items():
            total += c * lam**e
        return total

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------

    def _coerce(self, other: "Laurent | Scalar"):
        if isinstance(other, Laurent):
            return other
        if isinstance(other, (int, float, Fraction)):
            return Laurent.const(other)
        return NotImplemented

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Laurent):
            return self._terms == other._terms
        if isinstance(other, (int, float, Fraction)):
            return self._terms == Laurent.const(other)._terms
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._terms.items()))
        return self._hash

    def __bool__(self) -> bool:
        return bool(self._terms)

    def __repr__(self) -> str:
        if not self._terms:
            return "Laurent(0)"
        parts = []
        for exp in sorted(self._terms):
            coeff = self._terms[exp]
            if exp == 0:
                parts.append(f"{coeff}")
            elif exp == 1:
                parts.append(f"{coeff}*L" if coeff != 1 else "L")
            else:
                parts.append(f"{coeff}*L**{exp}" if coeff != 1 else f"L**{exp}")
        return "Laurent(" + " + ".join(parts) + ")"
