"""A cache-blocked reference gemm (educational substrate).

The paper's performance rests on a highly tuned BLAS; this environment
has no native extension toolchain (DESIGN.md §2), so this module shows
the *structure* such kernels have — the three-tier loop nest of
Goto-style implementations — in pure NumPy:

- ``NC/KC/MC`` blocking walks panels of ``B``, ``A`` and ``C`` sized to
  the (modelled) L3/L2/L1 tiers;
- panels are *packed* (copied contiguous) before the inner products, the
  step that makes real kernels cache- and TLB-friendly;
- the innermost "micro-kernel" is a plain NumPy matmul on packed panels.

It computes exactly ``A @ B`` (tests pin this on ragged shapes) and
exposes per-tier traffic counters so one can see why blocking wins —
which is the measurement mindset the HPC guides prescribe.  It is NOT a
fast path (Python loop overhead dwarfs its cache benefits at these
sizes); use it as an inspectable ``gemm=`` backend and a teaching tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["BlockedGemm", "blocked_gemm"]


@dataclass
class GemmCounters:
    """Traffic accounting of one blocked multiplication."""

    packed_a_bytes: int = 0
    packed_b_bytes: int = 0
    micro_kernel_calls: int = 0
    flops: int = 0


@dataclass
class BlockedGemm:
    """Callable blocked gemm with configurable tier sizes.

    Defaults follow the classic heuristic: ``KC x NC`` panel of ``B`` in
    L3, ``MC x KC`` panel of ``A`` in L2.
    """

    mc: int = 128
    kc: int = 256
    nc: int = 512
    counters: GemmCounters = field(default_factory=GemmCounters)

    def __post_init__(self) -> None:
        if min(self.mc, self.kc, self.nc) < 1:
            raise ValueError("block sizes must be positive")

    def __call__(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
            raise ValueError(f"bad operand shapes {A.shape} @ {B.shape}")
        M, K = A.shape
        N = B.shape[1]
        C = np.zeros((M, N), dtype=np.result_type(A, B))
        ctr = self.counters
        for jc in range(0, N, self.nc):          # NC: panel of B columns
            nb = min(self.nc, N - jc)
            for pc in range(0, K, self.kc):      # KC: rank-KC update
                kb = min(self.kc, K - pc)
                Bp = np.ascontiguousarray(B[pc:pc + kb, jc:jc + nb])
                ctr.packed_b_bytes += Bp.nbytes
                for ic in range(0, M, self.mc):  # MC: panel of A rows
                    mb = min(self.mc, M - ic)
                    Ap = np.ascontiguousarray(A[ic:ic + mb, pc:pc + kb])
                    ctr.packed_a_bytes += Ap.nbytes
                    # micro-kernel
                    C[ic:ic + mb, jc:jc + nb] += Ap @ Bp
                    ctr.micro_kernel_calls += 1
                    ctr.flops += 2 * mb * kb * nb
        return C


def blocked_gemm(A: np.ndarray, B: np.ndarray, mc: int = 128, kc: int = 256,
                 nc: int = 512) -> np.ndarray:
    """One-shot helper around :class:`BlockedGemm`."""
    return BlockedGemm(mc=mc, kc=kc, nc=nc)(A, B)
