"""Exact and numerical linear-algebra substrate.

This subpackage provides the low-level machinery the rest of the library is
built on:

- :mod:`repro.linalg.laurent` — exact Laurent polynomials in the APA
  parameter ``lambda`` over rational coefficients, used to encode and verify
  bilinear algorithms symbolically.
- :mod:`repro.linalg.tensor` — the matrix-multiplication tensor
  ``T<m,n,k>`` and exact trilinear contractions.
- :mod:`repro.linalg.blocking` — block partitioning, padding and peeling of
  NumPy operands so that fixed-size bilinear rules apply to arbitrary shapes.
- :mod:`repro.linalg.storage` — ``.npy`` memmap helpers backing the
  out-of-core shard path (:mod:`repro.shard`).
"""

from repro.linalg.laurent import Laurent
from repro.linalg.tensor import matmul_tensor, triple_product_tensor
from repro.linalg.blocking import (
    BlockPartition,
    pad_to_multiple,
    split_blocks,
    join_blocks,
)
from repro.linalg.storage import create_matrix, open_matrix, save_matrix

__all__ = [
    "Laurent",
    "matmul_tensor",
    "triple_product_tensor",
    "BlockPartition",
    "pad_to_multiple",
    "split_blocks",
    "join_blocks",
    "save_matrix",
    "open_matrix",
    "create_matrix",
]
