"""Thread-assignment strategies for the ``r`` sub-multiplications (§3.2).

With ``r`` multiplications and ``p`` threads, write ``r = p*q + l`` with
``0 <= l < p``:

- **hybrid** (the paper's choice, Fig 2): ``q`` rounds in which every
  thread computes one multiplication with *single-threaded* gemm, then the
  ``l`` remainder multiplications each run on *all* ``p`` threads with
  multithreaded gemm.  Perfect load balance; the remainder products are the
  weak spot at high thread counts (their dimensions are small).
- **BFS** ("breadth-first"): like hybrid for the ``q`` rounds, but the
  remainder multiplications run concurrently on ``l`` threads (one each),
  leaving ``p - l`` threads idle.
- **DFS** ("depth-first"): every multiplication runs with all ``p``
  threads, one after another — multithreaded gemm on small blocks attains
  a small fraction of peak.

A :class:`Schedule` is an explicit list of phases, each a list of
``(multiplication_index, threads)`` jobs that run concurrently; both the
simulator and the real executor consume the same object, and the Fig-2
driver prints it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Phase", "Schedule", "build_schedule", "STRATEGIES"]

STRATEGIES = ("hybrid", "bfs", "dfs")


@dataclass(frozen=True)
class Phase:
    """Jobs that execute concurrently: ``(mult_index, threads)`` pairs."""

    jobs: tuple[tuple[int, int], ...]

    @property
    def concurrency(self) -> int:
        return len(self.jobs)

    def threads_used(self) -> int:
        return sum(threads for _, threads in self.jobs)


@dataclass(frozen=True)
class Schedule:
    """A strategy instantiated for concrete ``(r, p)``."""

    strategy: str
    rank: int
    threads: int
    phases: tuple[Phase, ...]

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for phase in self.phases:
            for mult, t in phase.jobs:
                if mult in seen:
                    raise ValueError(f"multiplication {mult} scheduled twice")
                seen.add(mult)
                if not (1 <= t <= self.threads):
                    raise ValueError(
                        f"job for mult {mult} uses {t} threads, have {self.threads}"
                    )
        if seen != set(range(self.rank)):
            missing = sorted(set(range(self.rank)) - seen)
            raise ValueError(f"multiplications not scheduled: {missing}")

    @property
    def q(self) -> int:
        """Full rounds per thread (``r // p``)."""
        return self.rank // self.threads

    @property
    def remainder(self) -> int:
        """Leftover multiplications (``r mod p``)."""
        return self.rank % self.threads

    def describe(self) -> str:
        """Human-readable description (the Fig-2 illustration in text)."""
        lines = [
            f"{self.strategy} schedule: r={self.rank} multiplications on "
            f"p={self.threads} threads (q={self.q}, remainder={self.remainder})"
        ]
        for idx, phase in enumerate(self.phases):
            jobs = ", ".join(f"M{m + 1}(x{t})" for m, t in phase.jobs)
            lines.append(f"  phase {idx + 1}: {jobs}")
        return "\n".join(lines)


def build_schedule(rank: int, threads: int, strategy: str = "hybrid") -> Schedule:
    """Instantiate a strategy for ``rank`` multiplications on ``threads``.

    ``strategy`` is one of :data:`STRATEGIES`.
    """
    if rank < 1:
        raise ValueError("rank must be >= 1")
    if threads < 1:
        raise ValueError("threads must be >= 1")
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; use one of {STRATEGIES}")

    q, remainder = divmod(rank, threads)
    phases: list[Phase] = []
    mult = 0

    if strategy == "dfs":
        for mult in range(rank):
            phases.append(Phase(jobs=((mult, threads),)))
        return Schedule(strategy, rank, threads, tuple(phases))

    # hybrid and BFS share the q balanced rounds of single-threaded gemms
    for _ in range(q):
        jobs = tuple((mult + j, 1) for j in range(threads))
        phases.append(Phase(jobs=jobs))
        mult += threads

    if remainder:
        if strategy == "hybrid":
            for j in range(remainder):
                phases.append(Phase(jobs=((mult + j, threads),)))
        else:  # bfs: remainder on `remainder` threads concurrently, rest idle
            jobs = tuple((mult + j, 1) for j in range(remainder))
            phases.append(Phase(jobs=jobs))

    return Schedule(strategy, rank, threads, tuple(phases))
