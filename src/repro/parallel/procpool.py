"""Process-backed execution of fast-matmul schedules over shared memory.

The threaded executor realizes the paper's §3.2 hybrid schedule only as
far as the GIL allows: NumPy's gemm releases it, but the S/T/W linear
combinations — the memory-bound third of every APA call — serialize on
one interpreter.  This module maps the same ``r = p·q + ℓ`` schedule
onto real worker *processes*: the padded A/B operands and the ``r``
product blocks live in :mod:`multiprocessing.shared_memory` segments
(:mod:`repro.parallel.shm`), workers build their S/T combinations from
zero-copy views and write products straight into the shared OUT
segment, and the only per-task traffic is a small pickled spec.

Failure contract (mirrors the threaded executor's ladder):

- a gemm that raises inside a worker is retried *in the worker* with
  the same deterministic decorrelated-jitter backoff, then recomputed
  classically in the worker — statuses ``ok``/``retried``/``fallback``;
- a worker that overruns ``timeout`` is abandoned: the parent
  recomputes the block classically (``timeout-fallback``) and condemns
  the call's segments so the straggler's late write cannot reach any
  future call;
- a *crashed* worker (``BrokenProcessPool``) triggers the parent-side
  ladder: rebuild the pool, back off, resubmit up to ``retries`` times,
  then classical fallback;
- any other exception a worker raises (segment attach failure, closed
  mapping, bad spec) reaches the parent, which recomputes the block
  classically (``fallback``) and condemns the call's segments.

Results are bit-identical to the interpreter and threaded paths: the
staging, ``linear_combination`` calls, gemms, and W-combination are the
same operations in the same order on the same values — only the address
space they run in differs.

Workers start via ``spawn``, never ``fork``: the parent is
multithreaded (executor pool, tracer, BLAS), and forking it can copy
held locks into workers.  Worker-side attaches
patch ``resource_tracker.register`` to a no-op for the duration of the
attach: on CPython 3.11 every POSIX attach registers the segment, and
the tracker process is shared with the parent — a worker-side
unregister would erase the parent's sole registration (bpo-39959),
while double registration makes the tracker spew KeyError tracebacks
at exit.  The parent remains the single owner; its ``unlink`` (via
:mod:`repro.parallel.shm`) is the single cleanup.

All module-global rebinds happen under ``_LOCK`` (lint rule PAR001).
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from repro.core.apa_matmul import linear_combination
from repro.core.engine import _run_sequential, default_engine
from repro.linalg.blocking import BlockPartition
from repro.obs import tracer as _obs_tracer
from repro.obs.registry import default_registry
from repro.parallel.backoff import BackoffPolicy
from repro.parallel.executor import (DEFAULT_BACKOFF, ExecutionReport,
                                     JobOutcome, _flatten)
from repro.parallel.shm import acquire_segment, release_segment
from repro.parallel.strategy import Schedule, build_schedule

__all__ = ["process_apa_matmul", "get_process_pool",
           "shutdown_process_pool", "process_pool_stats"]

#: The process-wide engine; bound once — it is never replaced.
_ENGINE = default_engine()

#: Test seam: fault injected into the *first* execution of every task
#: shipped while set.  ``'exit'`` kills the worker process outright
#: (crash-recovery path), ``'raise'`` raises on every attempt,
#: ``'raise-once'`` only on attempt 1, ``'nan'`` poisons the block
#: (check_finite path).  Tests monkeypatch this; production never sets
#: it.
_TEST_INJECT: str | None = None

_LOCK = threading.Lock()
_POOL: ProcessPoolExecutor | None = None
_POOL_WORKERS: int = 0
_CREATES: int = 0
_RESTARTS: int = 0


def _worker_init() -> None:
    """Runs in each worker at spawn: workers never trace or re-pool."""
    from repro.obs.tracer import set_tracer

    set_tracer(None)


def _make_pool(workers: int) -> ProcessPoolExecutor:
    # Never fork: the parent is typically multithreaded (threaded
    # executor pool, tracer, BLAS threads), and forking a multithreaded
    # process can copy held locks into the worker and deadlock it.
    # Task specs are fully picklable, so 'spawn' (available on every
    # platform) works; it is preferred over 'forkserver' because the
    # crash-recovery ladder rebuilds pools under churn, and the shared
    # forkserver process is a single point of failure there (its fd
    # handshake races when pools are torn down mid-spawn).
    ctx = mp.get_context("spawn")
    return ProcessPoolExecutor(max_workers=workers, mp_context=ctx,
                               initializer=_worker_init)


def get_process_pool(workers: int) -> ProcessPoolExecutor:
    """The shared process pool, created lazily, resized only on change.

    Same contract as :func:`repro.parallel.pool.get_pool`: callers must
    not shut the returned pool down; its lifetime is the process, ended
    by :func:`shutdown_process_pool` or the atexit hook.
    """
    global _POOL, _POOL_WORKERS, _CREATES
    if workers < 1:
        raise ValueError("workers must be >= 1")
    with _LOCK:
        if _POOL is not None and _POOL_WORKERS == workers:
            return _POOL
        old = _POOL
        _POOL = _make_pool(workers)
        _CREATES += 1
        _POOL_WORKERS = workers
        pool = _POOL
    if old is not None:
        old.shutdown(wait=True)
    tracer = _obs_tracer.ACTIVE
    if tracer is not None:
        tracer.instant(
            "process-pool-resize" if old is not None else
            "process-pool-create", cat="pool", workers=workers)
    return pool


def _drop_broken_pool() -> None:
    """Discard the shared pool if it broke; the next get() rebuilds it.

    Checked against the *current* global pool, so the N futures of one
    phase that all observe the same ``BrokenProcessPool`` trigger one
    restart, and a pool rebuilt in the meantime is left alone.
    """
    global _POOL, _POOL_WORKERS, _RESTARTS
    with _LOCK:
        pool = _POOL
        broken = pool is not None and bool(getattr(pool, "_broken", False))
        if broken:
            _POOL = None
            _POOL_WORKERS = 0
            _RESTARTS += 1
    if broken and pool is not None:
        pool.shutdown(wait=False)
        default_registry().counter(
            "repro_process_worker_restarts_total",
            "worker pools rebuilt after a process crash").inc()


def shutdown_process_pool(wait: bool = True) -> None:
    """Tear the shared process pool down (tests and interpreter exit)."""
    global _POOL, _POOL_WORKERS
    with _LOCK:
        pool = _POOL
        _POOL = None
        _POOL_WORKERS = 0
    if pool is not None:
        pool.shutdown(wait=wait)


def process_pool_stats() -> dict[str, int]:
    """Lifetime counters: current size, pool creations, crash restarts."""
    with _LOCK:
        return {
            "workers": _POOL_WORKERS,
            "creates": _CREATES,
            "restarts": _RESTARTS,
        }


atexit.register(shutdown_process_pool)


# ---------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------

def _noop_register(name: str, rtype: str) -> None:
    """Stand-in for ``resource_tracker.register`` during attaches."""


#: Per-worker attach cache: segment name -> live mapping, in true LRU
#: order (hits re-append).  Bounded so a long-lived worker cycling
#: through many condemned segments does not accumulate mappings.
#: Single-threaded per worker; never rebound.
_WORKER_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}
_WORKER_SEGMENT_CAP = 16


def _attach_segment(
    name: str,
    protect: frozenset[str] = frozenset(),
) -> shared_memory.SharedMemory:
    """Attach (or re-use) one segment mapping, LRU-evicting old ones.

    ``protect`` names segments the *current* task is about to view:
    they are never evicted, so a cache miss cannot close a mapping a
    sibling view of this task still needs (a closed mapping's ``buf``
    is ``None``, and ``np.ndarray(..., buffer=None)`` would silently
    allocate garbage instead of failing).
    """
    seg = _WORKER_SEGMENTS.pop(name, None)
    if seg is not None:
        _WORKER_SEGMENTS[name] = seg  # cache hit: refresh LRU order
        return seg
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = _noop_register  # bpo-39959
    try:
        seg = shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original
    while len(_WORKER_SEGMENTS) >= _WORKER_SEGMENT_CAP:
        victim = next(
            (n for n in _WORKER_SEGMENTS if n not in protect), None)
        if victim is None:
            break
        _WORKER_SEGMENTS.pop(victim).close()
    _WORKER_SEGMENTS[name] = seg
    return seg


class _NonFiniteBlock(ArithmeticError):
    """Internal: a worker's product block came back with NaN/Inf."""


@dataclass(frozen=True)
class _TaskSpec:
    """Everything one worker needs for one scheduled sub-product."""

    mult: int
    a_name: str
    b_name: str
    out_name: str
    a_shape: tuple[int, int]
    b_shape: tuple[int, int]
    out_shape: tuple[int, int, int]
    dtype: str
    m: int
    n: int
    k: int
    u_col: np.ndarray
    v_col: np.ndarray
    #: ``('catalog', name)`` / ``('object', algorithm)``; ``None`` when
    #: ``steps == 1`` (the worker then needs no coefficients at all).
    algorithm: Any
    lam: float
    steps: int
    retries: int
    check_finite: bool
    #: ``(base, cap, multiplier, seed)`` of the parent's policy — the
    #: injectable ``sleep`` cannot cross the process boundary, so the
    #: worker reconstructs the same deterministic delay sequence and
    #: reports the delays it actually slept back to the parent.
    backoff: tuple[float, float, float, int]
    inject: str | None


def _task_algorithm(spec: _TaskSpec) -> Any:
    kind, value = spec.algorithm
    if kind == "catalog":
        from repro.algorithms.catalog import get_algorithm

        return get_algorithm(value)
    return value


def _run_task(spec: _TaskSpec) -> tuple:
    """Worker body: S/T combination, gemm ladder, OUT write.

    Returns ``(mult, status, attempts, error_text, start, end, delays)``
    with the threaded executor's status vocabulary.  Gemm faults are
    handled here with the retry → classical ladder; anything raised
    outside that loop (attach failure, closed mapping) propagates and
    the parent recomputes the block classically.
    """
    start = time.perf_counter()
    dtype = np.dtype(spec.dtype)
    live = frozenset((spec.a_name, spec.b_name, spec.out_name))
    a_seg = _attach_segment(spec.a_name, protect=live)
    b_seg = _attach_segment(spec.b_name, protect=live)
    out_seg = _attach_segment(spec.out_name, protect=live)
    for seg in (a_seg, b_seg, out_seg):
        if seg.buf is None:
            raise RuntimeError(
                f"shared-memory mapping {seg.name!r} is closed")
    Ap = np.ndarray(spec.a_shape, dtype=dtype, buffer=a_seg.buf)
    Bp = np.ndarray(spec.b_shape, dtype=dtype, buffer=b_seg.buf)
    OUT = np.ndarray(spec.out_shape, dtype=dtype, buffer=out_seg.buf)
    S = linear_combination(_flatten(Ap, spec.m, spec.n), spec.u_col)
    T = linear_combination(_flatten(Bp, spec.n, spec.k), spec.v_col)

    if spec.steps > 1:
        algorithm = _task_algorithm(spec)

        def gemm(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
            return _run_sequential(X, Y, algorithm, spec.lam,
                                   spec.steps - 1, np.matmul, None, None)
    else:
        gemm = np.matmul

    base, cap, multiplier, seed = spec.backoff
    policy = BackoffPolicy(base=base, cap=cap, multiplier=multiplier,
                           seed=seed)
    backoff = None
    delays: list[float] = []
    error_text = ""
    for attempt in range(1, spec.retries + 2):
        try:
            if spec.inject == "exit":
                os._exit(17)
            if spec.inject == "raise" or (spec.inject == "raise-once"
                                          and attempt == 1):
                raise RuntimeError("injected worker fault")
            P = gemm(S, T)
            if spec.inject == "nan" and attempt == 1:
                P = np.full_like(P, np.nan)
            if spec.check_finite and not np.isfinite(P).all():
                raise _NonFiniteBlock("block contains NaN/Inf")
        except Exception as exc:
            error_text = f"{type(exc).__name__}: {exc}"
            if attempt <= spec.retries:
                if backoff is None:
                    backoff = policy.sequence(key=spec.mult)
                delays.append(backoff.wait())
            continue
        OUT[spec.mult] = P
        status = "ok" if attempt == 1 else "retried"
        return (spec.mult, status, attempt, "", start,
                time.perf_counter(), delays)
    # All attempts failed: classical gemm for this block, in the worker.
    OUT[spec.mult] = np.matmul(S, T)
    return (spec.mult, "fallback", spec.retries + 1, error_text, start,
            time.perf_counter(), delays)


# ---------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------

def _algorithm_ref(algorithm: Any) -> Any:
    """Ship catalog algorithms by name (workers re-resolve the shared
    singleton, so their plan caches hit across tasks); anything else is
    pickled whole."""
    name = getattr(algorithm, "name", None)
    if isinstance(name, str):
        from repro.algorithms.catalog import get_algorithm

        try:
            if get_algorithm(name) is algorithm:
                return ("catalog", name)
        except (KeyError, ValueError):
            pass
    return ("object", algorithm)


def process_apa_matmul(
    A: np.ndarray,
    B: np.ndarray,
    algorithm: Any,
    workers: int,
    lam: float | None = None,
    strategy: str | None = None,
    schedule: Schedule | None = None,
    steps: int | None = None,
    retries: int | None = None,
    timeout: float | None = None,
    check_finite: bool | None = None,
    report: ExecutionReport | None = None,
    plan_cache: Any = None,
) -> np.ndarray:
    """§3.2 schedule execution on worker *processes* over shared memory.

    The process twin of :func:`~repro.parallel.executor.
    threaded_apa_matmul`: same parameters (minus ``gemm`` — a custom
    gemm cannot cross the process boundary; use ``executor='thread'``
    for gemm/fault seams), same failure ladder, bit-identical results.
    Routes through the engine, so an active
    :func:`~repro.core.config.execution_context` resolves normally.
    """
    return _ENGINE.matmul(
        A, B, algorithm, report=report, executor="process",
        threads=workers, lam=lam, strategy=strategy, schedule=schedule,
        steps=steps, retries=retries, timeout=timeout,
        check_finite=check_finite, plan_cache=plan_cache)


def _process_matmul_impl(
    A: np.ndarray,
    B: np.ndarray,
    algorithm: Any,
    workers: int,
    lam: float | None = None,
    strategy: str = "hybrid",
    schedule: Schedule | None = None,
    steps: int = 1,
    retries: int = 0,
    timeout: float | None = None,
    check_finite: bool = False,
    report: ExecutionReport | None = None,
    plan_cache: Any = None,
) -> np.ndarray:
    """The process-executor body, engine-owned.

    Only :mod:`repro.core.engine` may call this (staticcheck ENG001
    enforces it); everything else goes through the engine so tracing,
    guarding, and config resolution stay layered at one point.
    """
    if algorithm.is_surrogate:
        raise ValueError(
            f"{algorithm.name!r} is a metadata surrogate; real process "
            "execution needs full coefficients (use the simulator for it)"
        )
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
        raise ValueError(f"bad operand shapes {A.shape} @ {B.shape}")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if timeout is not None and timeout <= 0:
        raise ValueError("timeout must be positive")

    from repro.core.lam import optimal_lambda, precision_bits

    dtype = np.result_type(A.dtype, B.dtype)
    if dtype.hasobject:
        raise ValueError("process execution requires a fixed-size dtype")
    if lam is None:
        d = precision_bits(dtype) if dtype.kind == "f" else 52
        lam = optimal_lambda(algorithm, d=d, steps=steps)

    m, n, k = algorithm.m, algorithm.n, algorithm.k
    r = algorithm.rank

    from repro.core.plan import resolve_plan_cache

    cache = resolve_plan_cache(plan_cache)
    if (cache is not None and schedule is None
            and A.dtype == B.dtype and A.dtype.kind == "f"):
        # Metadata-only plan use (schedule, partition, evaluated
        # coefficients): blocks live in shared memory, not the plan's
        # arenas, so no workspace is checked out.  The key matches the
        # threaded path on purpose — both executors share one plan per
        # (shape, dtype, lam, schedule geometry).
        plan = cache.plan_for(
            algorithm, A.shape[0], A.shape[1], B.shape[1], A.dtype, lam,
            steps=steps, mode="threaded", strategy=strategy,
            threads=workers)
        schedule = plan.schedule
        part = plan.partition
        Un, Vn, Wn = plan.Un, plan.Vn, plan.Wn
    else:
        if schedule is None:
            schedule = build_schedule(r, workers, strategy)
        part = BlockPartition(
            m, n, k, rows_a=A.shape[0], cols_a=A.shape[1],
            cols_b=B.shape[1], steps=steps)
        Un, Vn, Wn = algorithm.evaluate(lam, dtype=dtype)

    Mp = part.padded_rows_a
    Np = part.padded_cols_a
    Kp = part.padded_cols_b
    bm, bk = Mp // m, Kp // k
    itemsize = dtype.itemsize

    a_seg = acquire_segment(Mp * Np * itemsize)
    b_seg = acquire_segment(Np * Kp * itemsize)
    out_seg = acquire_segment(r * bm * bk * itemsize)
    pooled = True

    tracer = _obs_tracer.ACTIVE
    outer_span = None
    if tracer is not None:
        outer_span = tracer.span(
            "process_apa_matmul", cat="parallel",
            algorithm=algorithm.name, workers=workers, strategy=strategy,
            shape=f"{tuple(A.shape)}@{tuple(B.shape)}", steps=steps)
        outer_span.__enter__()
    try:
        Ap = a_seg.view((Mp, Np), dtype)
        Ap[:A.shape[0], :A.shape[1]] = A
        if Mp > A.shape[0]:
            Ap[A.shape[0]:, :] = 0
        if Np > A.shape[1]:
            Ap[:A.shape[0], A.shape[1]:] = 0
        Bp = b_seg.view((Np, Kp), dtype)
        Bp[:B.shape[0], :B.shape[1]] = B
        if Np > B.shape[0]:
            Bp[B.shape[0]:, :] = 0
        if Kp > B.shape[1]:
            Bp[:B.shape[0], B.shape[1]:] = 0
        OUT = out_seg.view((r, bm, bk), dtype)
        a_blocks = _flatten(Ap, m, n)
        b_blocks = _flatten(Bp, n, k)

        def operands(i: int) -> tuple[np.ndarray, np.ndarray]:
            return (linear_combination(a_blocks, Un[:, i]),
                    linear_combination(b_blocks, Vn[:, i]))

        def record(outcome: JobOutcome) -> None:
            if report is not None:
                report.jobs.append(outcome)

        def emit(kind: str, mult: int, detail: str,
                 attempt: int = 0) -> None:
            if report is not None:
                report.events.emit(kind, f"mult {mult}", detail,
                                   attempt=attempt)

        policy = (report.backoff if report is not None
                  and report.backoff is not None else DEFAULT_BACKOFF)
        alg_ref = _algorithm_ref(algorithm) if steps > 1 else None

        def make_spec(i: int, inject: str | None) -> _TaskSpec:
            return _TaskSpec(
                mult=i, a_name=a_seg.name, b_name=b_seg.name,
                out_name=out_seg.name, a_shape=(Mp, Np),
                b_shape=(Np, Kp), out_shape=(r, bm, bk), dtype=dtype.str,
                m=m, n=n, k=k,
                u_col=np.ascontiguousarray(Un[:, i]),
                v_col=np.ascontiguousarray(Vn[:, i]),
                algorithm=alg_ref, lam=float(lam), steps=steps,
                retries=retries, check_finite=check_finite,
                backoff=(policy.base, policy.cap, policy.multiplier,
                         policy.seed),
                inject=inject)

        def resubmit(i: int) -> tuple[tuple | None, int]:
            """Parent-side ladder after a crash: backoff → respawn →
            resubmit, up to ``retries`` extra attempts."""
            backoff = None
            for attempt in range(1, retries + 1):
                if backoff is None:
                    backoff = policy.sequence(key=i)
                delay = backoff.wait()
                if report is not None:
                    report.backoff_delays.append(delay)
                emit("backoff", i, f"slept {delay * 1e3:.3f} ms before "
                     "respawned retry", attempt=attempt)
                emit("retry", i, f"attempt {attempt + 1} of "
                     f"{retries + 1}", attempt=attempt)
                fresh = get_process_pool(workers)
                try:
                    fut = fresh.submit(_run_task, make_spec(i, None))
                    return fut.result(timeout=timeout), attempt
                except Exception as exc:
                    # Crash, timeout, or a worker-raised error — any of
                    # them burns this rung of the ladder; exhaustion
                    # means the caller's classical fallback.
                    _drop_broken_pool()
                    emit("worker-crash", i,
                         f"{type(exc).__name__}: {exc}",
                         attempt=attempt + 1)
            return None, retries

        tasks_counter = default_registry().counter(
            "repro_process_tasks_total",
            "sub-multiplications dispatched to worker processes")

        products: dict[int, np.ndarray] = {}
        pool = get_process_pool(workers)
        for phase in schedule.phases:
            t0 = time.perf_counter()
            pending: list[tuple[int, Any]] = []
            for mult, _ in phase.jobs:
                spec = make_spec(mult, _TEST_INJECT)
                tasks_counter.inc()
                try:
                    fut = pool.submit(_run_task, spec)
                except (BrokenProcessPool, RuntimeError, OSError):
                    # The pool died between phases (or was shut down
                    # under us), or a worker spawn failed; rebuild once
                    # and resubmit.
                    _drop_broken_pool()
                    pool = get_process_pool(workers)
                    fut = pool.submit(_run_task, spec)
                pending.append((mult, fut))
            for mult, fut in pending:
                crash_attempts = 0
                try:
                    outcome = fut.result(timeout=timeout)
                except FutureTimeoutError:
                    # The worker is alive but late: its mapping stays
                    # valid, so condemn the segments and never pool
                    # them — the straggler's write lands in orphaned
                    # memory, not in a future call's blocks.
                    pooled = False
                    fut.cancel()
                    emit("worker-timeout", mult,
                         f"no result within {timeout}s; classical gemm "
                         "recomputed the block in the parent")
                    products[mult] = np.matmul(*operands(mult))
                    record(JobOutcome(
                        mult, "timeout-fallback", 1, t0,
                        time.perf_counter(),
                        error=f"timeout after {timeout}s"))
                    continue
                except BrokenProcessPool as exc:
                    pooled = False
                    emit("worker-crash", mult,
                         f"{type(exc).__name__}: {exc}", attempt=1)
                    _drop_broken_pool()
                    pool = get_process_pool(workers)
                    outcome, crash_attempts = resubmit(mult)
                except Exception as exc:
                    # A worker raised outside its retry loop (segment
                    # attach failure, closed mapping, bad spec).  The
                    # contract is that the parent always has a
                    # classical answer: condemn the segments and
                    # recompute the block here.
                    pooled = False
                    emit("worker-error", mult,
                         f"{type(exc).__name__}: {exc}; classical gemm "
                         "recomputed the block in the parent")
                    products[mult] = np.matmul(*operands(mult))
                    record(JobOutcome(
                        mult, "fallback", 1, t0, time.perf_counter(),
                        error=f"{type(exc).__name__}: {exc}"))
                    continue
                if outcome is None:
                    emit("job-fallback", mult,
                         "classical gemm recomputed the block in the "
                         "parent after worker crashes")
                    products[mult] = np.matmul(*operands(mult))
                    record(JobOutcome(
                        mult, "fallback", crash_attempts + 1, t0,
                        time.perf_counter(),
                        error="worker process crashed"))
                    continue
                (i, status, attempts, err, t_start, t_end,
                 delays) = outcome
                if crash_attempts:
                    status = "retried"
                    attempts += crash_attempts
                if report is not None:
                    report.backoff_delays.extend(delays)
                if status == "fallback":
                    emit("job-fallback", i, "classical gemm recomputed "
                         "the block in the worker")
                elif status == "retried":
                    emit("retry", i, f"succeeded after {attempts} "
                         "attempts", attempt=attempts)
                products[i] = OUT[i]
                record(JobOutcome(i, status, attempts, t_start, t_end,
                                  error=err))

        C = np.zeros((Mp, Kp), dtype=dtype)
        c_blocks = _flatten(C, m, k)
        for q in range(len(c_blocks)):
            initialized = False
            target = c_blocks[q]
            for i in range(r):
                w = Wn[q, i]
                if w == 0:
                    continue
                M = products[i]
                if not initialized:
                    if w == 1:
                        np.copyto(target, M)
                    else:
                        np.multiply(M, w, out=target)
                    initialized = True
                elif w == 1:
                    target += M
                elif w == -1:
                    target -= M
                else:
                    target += w * M
        return np.ascontiguousarray(part.crop(C))
    finally:
        if outer_span is not None:
            outer_span.__exit__(None, None, None)
        release_segment(a_seg, pooled=pooled)
        release_segment(b_seg, pooled=pooled)
        release_segment(out_seg, pooled=pooled)
