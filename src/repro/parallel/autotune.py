"""Algorithm selection: which rule should a given product use?

The paper's figures answer this empirically per configuration; this
module turns the calibrated model into a *decision procedure* a
downstream user can call:

- :func:`select_algorithm` — the fastest catalog algorithm (or classical)
  for a concrete ``(M, N, K, threads)``, optionally filtered by an error
  budget (``max_error`` at the working precision);
- :func:`crossover_dimension` — the square dimension beyond which an
  algorithm starts beating gemm (the "larger than 2000 or so" of §3.3);
- :func:`selection_table` — the full decision map over a size/thread
  grid, which is the practical summary of Figs 3a-3c.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.catalog import PAPER_ALGORITHMS, get_algorithm
from repro.machine.spec import MachineSpec, paper_machine
from repro.parallel.simulator import simulate_classical, simulate_fast

__all__ = ["Selection", "select_algorithm", "crossover_dimension", "selection_table"]


@dataclass(frozen=True)
class Selection:
    """Outcome of one algorithm-selection query."""

    algorithm: str  # 'classical' or a catalog name
    seconds: float
    speedup_vs_classical: float
    error_bound: float  # at the requested precision (2**-d for classical)


def select_algorithm(
    M: int,
    N: int,
    K: int,
    threads: int = 1,
    candidates: tuple[str, ...] = PAPER_ALGORITHMS,
    max_error: float | None = None,
    d: int = 23,
    steps: int = 1,
    spec: MachineSpec | None = None,
) -> Selection:
    """Pick the fastest admissible algorithm for one product.

    ``max_error`` (relative Frobenius) excludes algorithms whose §2.3
    error floor exceeds the budget; ``None`` admits everything.  The
    classical algorithm is always admissible, so the returned selection
    never violates the budget.
    """
    spec = spec or paper_machine()
    base = simulate_classical(M, N, K, threads=threads, spec=spec).total
    best = Selection("classical", base, 0.0, 2.0**-d)
    for name in candidates:
        alg = get_algorithm(name)
        bound = alg.error_bound(d=d, steps=steps)
        if max_error is not None and bound > max_error:
            continue
        t = simulate_fast(alg, M, N, K, threads=threads, steps=steps,
                          spec=spec).total
        if t < best.seconds:
            best = Selection(name, t, base / t - 1.0, bound)
    return best


def crossover_dimension(
    algorithm_name: str,
    threads: int = 1,
    low: int = 128,
    high: int = 32768,
    spec: MachineSpec | None = None,
) -> int | None:
    """Smallest square dimension where the algorithm beats gemm.

    Bisects over the (monotone in practice) speedup curve; returns
    ``None`` when the algorithm never wins below ``high``.
    """
    spec = spec or paper_machine()
    alg = get_algorithm(algorithm_name)

    def wins(n: int) -> bool:
        base = simulate_classical(n, n, n, threads=threads, spec=spec).total
        fast = simulate_fast(alg, n, n, n, threads=threads, spec=spec).total
        return fast < base

    if wins(low):
        return low
    if not wins(high):
        return None
    lo, hi = low, high
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if wins(mid):
            hi = mid
        else:
            lo = mid
    return hi


def selection_table(
    dims: tuple[int, ...] = (512, 1024, 2048, 4096, 8192),
    threads_list: tuple[int, ...] = (1, 6, 12),
    candidates: tuple[str, ...] = PAPER_ALGORITHMS,
    max_error: float | None = None,
    spec: MachineSpec | None = None,
) -> dict[tuple[int, int], Selection]:
    """The full decision map: ``(n, threads) -> Selection``."""
    table = {}
    for threads in threads_list:
        for n in dims:
            table[(n, threads)] = select_algorithm(
                n, n, n, threads=threads, candidates=candidates,
                max_error=max_error, spec=spec,
            )
    return table
