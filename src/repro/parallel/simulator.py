"""Predicted timing of fast-matmul schedules on a modelled machine.

This is the substrate that regenerates the paper's Figs 3, 6 and 7 on
hosts where wall-clock measurement is meaningless (DESIGN.md §2).  The
prediction composes exactly three ingredients:

1. the *schedule* (:mod:`repro.parallel.strategy`) — which
   sub-multiplication runs when, on how many threads;
2. the *gemm model* — time of each sub-product at its thread count and
   concurrency;
3. the *bandwidth model* — time of the (memory-bound) linear
   combinations, proportional to the algorithm's nonzero counts under the
   write-once strategy.

All quantities are single precision (4 bytes) by default, matching the
paper's experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.linalg.blocking import required_padding
from repro.machine.bandwidth import BandwidthModel
from repro.machine.gemm_model import GemmModel
from repro.machine.spec import MachineSpec, paper_machine
from repro.parallel.strategy import Schedule, build_schedule

__all__ = [
    "SimulatedTiming",
    "simulate_classical",
    "simulate_fast",
    "effective_gflops",
]


@dataclass(frozen=True)
class SimulatedTiming:
    """Breakdown of one simulated multiplication.

    ``total = t_input_combos + t_multiplications + t_output_combos``.
    ``flops`` is the classical flop count ``2*M*N*K`` of the *original*
    problem, so ``effective_gflops`` is directly the paper's Fig-3 metric.
    """

    algorithm: str
    M: int
    N: int
    K: int
    threads: int
    strategy: str
    steps: int
    t_input_combos: float
    t_multiplications: float
    t_output_combos: float

    @property
    def total(self) -> float:
        return self.t_input_combos + self.t_multiplications + self.t_output_combos

    @property
    def flops(self) -> float:
        return 2.0 * self.M * self.N * self.K

    @property
    def effective_gflops(self) -> float:
        return self.flops / self.total / 1e9


def effective_gflops(M: int, N: int, K: int, seconds: float) -> float:
    """The paper's Fig-3 metric: ``1e-9 * 2*M*N*K / time``."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return 2.0 * M * N * K / seconds / 1e9


def simulate_classical(
    M: int,
    N: int,
    K: int,
    threads: int = 1,
    spec: MachineSpec | None = None,
) -> SimulatedTiming:
    """Predicted time of one multithreaded gemm (the MKL baseline)."""
    spec = spec or paper_machine()
    gemm = GemmModel(spec)
    t = gemm.time(M, N, K, threads=threads)
    return SimulatedTiming(
        algorithm="classical",
        M=M, N=N, K=K,
        threads=threads,
        strategy="gemm",
        steps=0,
        t_input_combos=0.0,
        t_multiplications=t,
        t_output_combos=0.0,
    )


def simulate_fast(
    algorithm,
    M: int,
    N: int,
    K: int,
    threads: int = 1,
    strategy: str = "hybrid",
    steps: int = 1,
    spec: MachineSpec | None = None,
    dtype_bytes: int = 4,
    schedule: Schedule | None = None,
) -> SimulatedTiming:
    """Predicted time of one fast multiplication with one or more steps.

    ``algorithm`` is any :class:`~repro.algorithms.spec.AlgorithmLike`
    (surrogates use their modelled nonzero counts).  Dimensions are padded
    per level exactly like the real executor pads.

    Multi-step recursion is modelled depth-first: each sub-multiplication
    of the outer rule is itself a fast product at the same thread count of
    its phase.
    """
    spec = spec or paper_machine()
    if steps < 1:
        raise ValueError("steps must be >= 1")
    gemm = GemmModel(spec)
    bw = BandwidthModel(spec)
    m, n, k = algorithm.m, algorithm.n, algorithm.k
    r = algorithm.rank
    if schedule is None:
        schedule = build_schedule(r, threads, strategy)
    elif schedule.rank != r or schedule.threads != threads:
        raise ValueError("provided schedule does not match algorithm/threads")

    # Pad once for all levels, as the executor does.
    Mp = required_padding(M, m, steps)
    Np = required_padding(N, n, steps)
    Kp = required_padding(K, k, steps)
    bm, bn, bk = Mp // m, Np // n, Kp // k

    nnz_u, nnz_v, nnz_w = algorithm.nnz()
    bytes_a = bm * bn * dtype_bytes
    bytes_b = bn * bk * dtype_bytes
    bytes_c = bm * bk * dtype_bytes

    # Write-once traffic: read every nonzero operand block, write each of
    # the r formed S_i / T_i once; outputs read every contributing M_i and
    # write each of the m*k C blocks once.
    traffic_in = (nnz_u + r) * bytes_a + (nnz_v + r) * bytes_b
    traffic_out = (nnz_w + m * k) * bytes_c
    t_in = bw.time(traffic_in, threads)
    t_out = bw.time(traffic_out, threads)

    def sub_time(t: int, concurrent: int) -> float:
        """Time of one sub-multiplication on ``t`` threads."""
        if steps == 1:
            return gemm.time(bm, bn, bk, threads=t, concurrent=concurrent)
        inner = simulate_fast(
            algorithm, bm, bn, bk,
            threads=t, strategy=strategy, steps=steps - 1,
            spec=spec, dtype_bytes=dtype_bytes,
        )
        return inner.total * spec.concurrency_throttle(concurrent)

    t_mults = 0.0
    for phase in schedule.phases:
        c = phase.concurrency
        t_mults += max(sub_time(t, c) for _, t in phase.jobs)

    return SimulatedTiming(
        algorithm=algorithm.name,
        M=M, N=N, K=K,
        threads=threads,
        strategy=schedule.strategy,
        steps=steps,
        t_input_combos=t_in,
        t_multiplications=t_mults,
        t_output_combos=t_out,
    )
