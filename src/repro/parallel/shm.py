"""Pooled POSIX shared-memory segments for the process-backed executor.

The process executor stages the padded A/B operands and the r product
blocks in :class:`multiprocessing.shared_memory.SharedMemory` segments
so worker processes operate on zero-copy ``np.ndarray`` views — the
only bytes that cross the process boundary per task are a small spec
tuple.  Segment creation is not free (a shm_open + mmap + resource
tracker round-trip), so segments are pooled in power-of-two size
buckets and reused across calls, like the plan cache's arenas.

Cleanup discipline (the PR-8 leak fix applies here from day one):

- every segment carries a :func:`weakref.finalize` that closes *and*
  unlinks it, so a leaked reference still cannot outlive the process
  without being reclaimed (finalizers run at interpreter exit);
- :func:`shutdown_segments` drains the free pool and is registered
  with :mod:`atexit`;
- a caller that suspects a stale writer (a timed-out or crashed
  worker) releases with ``pooled=False``: the segment is *condemned* —
  unlinked immediately instead of pooled.  POSIX keeps existing
  mappings alive after unlink, so a straggler worker writes into
  memory nobody will ever read instead of into the next call's data.

Only the *parent* process creates segments.  Workers attach by name
(see :mod:`repro.parallel.procpool`) with the resource tracker's
``register`` patched out for the duration of the attach: on 3.11 every
POSIX attach registers with the tracker, and the worker-side cleanup
would otherwise unregister the parent's sole registration (bpo-39959).

All module-global rebinds happen under ``_LOCK`` (lint rule PAR001).
"""

from __future__ import annotations

import atexit
import threading
import weakref
from multiprocessing import shared_memory

import numpy as np

from repro.obs.registry import default_registry

__all__ = ["ShmSegment", "acquire_segment", "release_segment",
           "shm_stats", "shutdown_segments"]

#: Smallest bucket (one page's worth of typical small-operand tests).
_BUCKET_MIN = 1 << 12

#: Free-pool cap: beyond this the released segment is destroyed, not
#: pooled, so pathological size churn cannot pin unbounded shm.
_MAX_POOLED_BYTES = 256 * 1024 * 1024

_LOCK = threading.Lock()
_FREE: dict[int, list["ShmSegment"]] = {}
_POOLED_BYTES: int = 0
_CREATES: int = 0
_REUSES: int = 0
_CONDEMNED: int = 0
_DESTROYS: int = 0


def _bucket(nbytes: int) -> int:
    size = _BUCKET_MIN
    while size < nbytes:
        size <<= 1
    return size


def _destroy(shm: shared_memory.SharedMemory) -> None:
    """Close + unlink one segment (finalizer body; idempotent-safe)."""
    global _DESTROYS
    try:
        shm.close()
    except OSError:  # pragma: no cover - buffer already released
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass
    try:
        with _LOCK:
            _DESTROYS += 1
        default_registry().gauge(
            "repro_shm_segments_active",
            "live shared-memory segments owned by this process").dec()
    except Exception:  # lint: ignore[NUM002]: finalizer at interpreter teardown; registry/lock may be gone
        pass


class ShmSegment:
    """One owned shared-memory segment plus typed ndarray views.

    Created only in the parent process; :meth:`view` returns a
    zero-copy ``np.ndarray`` over the mapping.  The finalizer both
    closes and unlinks, so ``del``-ing the last reference (or
    interpreter exit) reclaims the kernel object even on error paths.
    """

    __slots__ = ("_shm", "name", "nbytes", "_finalizer", "__weakref__")

    def __init__(self, nbytes: int) -> None:
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self.name = self._shm.name
        self.nbytes = nbytes
        self._finalizer = weakref.finalize(self, _destroy, self._shm)

    def view(self, shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        return np.ndarray(shape, dtype=dtype, buffer=self._shm.buf)

    @property
    def alive(self) -> bool:
        return self._finalizer.alive

    def destroy(self) -> None:
        """Close and unlink now (idempotent)."""
        self._finalizer()


def acquire_segment(nbytes: int) -> ShmSegment:
    """A segment of at least ``nbytes``, pooled when possible.

    The returned segment's contents are *unspecified* (it may be a
    reused buffer); callers must overwrite every byte they later read.
    Return it with :func:`release_segment`.
    """
    global _CREATES, _REUSES
    size = _bucket(max(1, int(nbytes)))
    with _LOCK:
        bucket = _FREE.get(size)
        if bucket:
            global _POOLED_BYTES
            seg = bucket.pop()
            _POOLED_BYTES -= size
            _REUSES += 1
            return seg
        _CREATES += 1
    seg = ShmSegment(size)
    reg = default_registry()
    reg.counter("repro_shm_segments_created_total",
                "shared-memory segments created").inc()
    reg.counter("repro_shm_bytes_allocated_total",
                "bytes of shared memory allocated").inc(size)
    reg.gauge("repro_shm_segments_active",
              "live shared-memory segments owned by this process").inc()
    return seg


def release_segment(seg: ShmSegment, *, pooled: bool = True) -> None:
    """Return ``seg`` to the pool, or condemn it (``pooled=False``).

    Condemned segments are unlinked immediately: a worker that timed
    out may still hold a mapping and write into it later, and a pooled
    reuse of that memory would corrupt an unrelated call.  Unlinking
    removes only the *name* — the straggler's mapping stays valid and
    its writes land in orphaned memory.
    """
    global _POOLED_BYTES, _CONDEMNED
    if not seg.alive:
        return
    if pooled:
        with _LOCK:
            if _POOLED_BYTES + seg.nbytes <= _MAX_POOLED_BYTES:
                _FREE.setdefault(seg.nbytes, []).append(seg)
                _POOLED_BYTES += seg.nbytes
                return
    else:
        with _LOCK:
            _CONDEMNED += 1
        default_registry().counter(
            "repro_shm_segments_condemned_total",
            "segments unlinked early because a worker went rogue").inc()
    seg.destroy()


def shutdown_segments() -> None:
    """Destroy every pooled segment (tests and interpreter exit)."""
    global _POOLED_BYTES
    with _LOCK:
        segments = [seg for bucket in _FREE.values() for seg in bucket]
        _FREE.clear()
        _POOLED_BYTES = 0
    for seg in segments:
        seg.destroy()


def shm_stats() -> dict[str, int]:
    """Lifetime counters of the segment pool."""
    with _LOCK:
        return {
            "pooled_segments": sum(len(b) for b in _FREE.values()),
            "pooled_bytes": _POOLED_BYTES,
            "creates": _CREATES,
            "reuses": _REUSES,
            "condemned": _CONDEMNED,
            "destroys": _DESTROYS,
        }


atexit.register(shutdown_segments)
