"""Parallelization of fast matrix multiplication (paper §3).

- :mod:`repro.parallel.strategy` — the hybrid / BFS / DFS assignments of
  the ``r`` sub-multiplications to ``p`` threads (Fig 2);
- :mod:`repro.parallel.executor` — a real thread-pool executor that runs
  a schedule with NumPy gemm (NumPy releases the GIL inside BLAS, so this
  is a faithful implementation on real multicore hosts);
- :mod:`repro.parallel.procpool` — the process-backed executor: the same
  schedules on a persistent worker-process pool with operands staged in
  shared memory (:mod:`repro.parallel.shm`), for the combination-bound
  regime where the GIL throttles the thread path;
- :mod:`repro.parallel.simulator` — predicted timings of the same
  schedules on a :class:`~repro.machine.spec.MachineSpec` (used to
  regenerate the paper's performance figures on hosts where wall-clock
  measurement is meaningless — see DESIGN.md §2).
"""

from repro.parallel.strategy import Schedule, build_schedule, STRATEGIES
from repro.parallel.simulator import (
    SimulatedTiming,
    simulate_classical,
    simulate_fast,
    effective_gflops,
)
from repro.parallel.executor import threaded_apa_matmul
from repro.parallel.pool import get_pool, pool_stats, shutdown_pool
from repro.parallel.procpool import (
    process_apa_matmul,
    get_process_pool,
    process_pool_stats,
    shutdown_process_pool,
)
from repro.parallel.shm import shm_stats, shutdown_segments

__all__ = [
    "Schedule",
    "build_schedule",
    "STRATEGIES",
    "SimulatedTiming",
    "simulate_classical",
    "simulate_fast",
    "effective_gflops",
    "threaded_apa_matmul",
    "get_pool",
    "pool_stats",
    "shutdown_pool",
    "process_apa_matmul",
    "get_process_pool",
    "process_pool_stats",
    "shutdown_process_pool",
    "shm_stats",
    "shutdown_segments",
]
