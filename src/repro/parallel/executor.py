"""Real threaded execution of fast-matmul schedules.

NumPy's gemm releases the GIL, so a plain :class:`ThreadPoolExecutor`
realizes the paper's hybrid strategy faithfully on a real multicore host:
the ``q`` balanced rounds run ``p`` single-threaded gemms concurrently
(BLAS should be pinned to one thread via ``OMP_NUM_THREADS=1`` /
``threadpoolctl`` for exact correspondence), and the remainder
multiplications run one at a time letting BLAS use all its threads.

On the single-core CI host this degrades gracefully to sequential
execution (and the performance *figures* come from the simulator, see
DESIGN.md §2) — but the code path, schedule handling, and numerics are
the real thing and are exercised by the test suite.
"""

from __future__ import annotations

import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field

import numpy as np

from repro.core.apa_matmul import linear_combination
from repro.core.engine import _run_sequential, default_engine
from repro.linalg.blocking import BlockPartition, split_blocks
from repro.obs import tracer as _obs_tracer
from repro.parallel.backoff import BackoffPolicy
from repro.parallel.pool import get_pool
from repro.parallel.strategy import Schedule, build_schedule
from repro.robustness.events import EventLog

__all__ = ["threaded_apa_matmul", "JobOutcome", "ExecutionReport",
           "DEFAULT_BACKOFF"]

#: The process-wide engine; bound once — it is never replaced.
_ENGINE = default_engine()

#: Retry pacing when the caller does not supply a policy: short enough
#: not to matter against a gemm, long enough to ride out a transient.
DEFAULT_BACKOFF = BackoffPolicy(base=0.001, cap=0.050)


def _flatten(X: np.ndarray, rows: int, cols: int) -> list[np.ndarray]:
    grid = split_blocks(X, rows, cols)
    return [grid[i][j] for i in range(rows) for j in range(cols)]


@dataclass(frozen=True)
class JobOutcome:
    """How one scheduled sub-multiplication actually went.

    ``status`` is ``'ok'`` (first try), ``'retried'`` (succeeded after
    retry), ``'fallback'`` (all attempts failed; classical gemm computed
    the block), or ``'timeout-fallback'`` (worker overran its deadline;
    classical gemm computed the block in the caller thread).
    """

    mult: int
    status: str
    attempts: int
    start: float
    end: float
    error: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ExecutionReport:
    """Per-job outcomes + structured failure events of one threaded call.

    Pass a fresh instance as ``threaded_apa_matmul(..., report=...)`` to
    capture it; :func:`repro.parallel.tracing.render_execution_gantt`
    renders the timeline with failures highlighted.
    """

    jobs: list[JobOutcome] = field(default_factory=list)
    events: EventLog = field(default_factory=EventLog)
    #: Optional retry-pacing override; ``None`` means
    #: :data:`DEFAULT_BACKOFF`.  Tests inject a policy with a recording
    #: ``sleep`` here to pin the schedule against a fake clock.
    backoff: BackoffPolicy | None = None
    #: Every backoff delay (seconds) slept by this call's retries, in
    #: emission order across jobs.
    backoff_delays: list[float] = field(default_factory=list)

    @property
    def failed_jobs(self) -> list[JobOutcome]:
        return [j for j in self.jobs if j.status != "ok"]


class _WorkerNonFinite(ArithmeticError):
    """Internal: a worker's block came back with NaN/Inf entries."""


def threaded_apa_matmul(
    A: np.ndarray,
    B: np.ndarray,
    algorithm,
    threads: int,
    lam: float | None = None,
    strategy: str | None = None,
    schedule: Schedule | None = None,
    gemm=None,
    steps: int | None = None,
    retries: int | None = None,
    timeout: float | None = None,
    check_finite: bool | None = None,
    report: ExecutionReport | None = None,
    plan_cache=None,
) -> np.ndarray:
    """``steps`` recursive levels of ``algorithm``, outer level threaded.

    A thin shim over :meth:`repro.core.engine.ExecutionEngine.threaded`
    (the single dispatch point); unset parameters resolve through any
    active :func:`~repro.core.config.execution_context`, then to the
    historical defaults (``strategy='hybrid'``, ``steps=1``,
    ``retries=0``, ``check_finite=False``).  Results are bit-identical
    to the pre-engine entry point.

    Parameters mirror :func:`repro.core.apa_matmul.apa_matmul`; the extra
    ``threads``/``strategy``/``schedule`` select the §3.2 parallelization
    of the *outer* level (inner levels, when ``steps > 1``, run
    sequentially inside each scheduled job — the paper parallelizes only
    across the top-level sub-products).  Surrogate algorithms are
    rejected — they have no coefficients to run.

    Worker threads come from the process-wide persistent pool
    (:func:`repro.parallel.pool.get_pool`), so repeated calls pay no
    thread spawn/teardown.  The partition, coefficients, schedule, and
    staging/output arenas are reused through the plan cache exactly as
    in :func:`~repro.core.apa_matmul.apa_matmul` (``plan_cache=False``
    restores the per-call build; an explicit ``schedule`` also bypasses
    the cache since custom schedules are not part of the plan key).

    Failure handling (the guarded-execution contract): a job whose gemm
    raises is retried up to ``retries`` times — each retry waits a
    decorrelated-jitter backoff delay first (:data:`DEFAULT_BACKOFF`,
    overridable via ``report.backoff``; the slept delays land in
    ``report.backoff_delays``) — and then recomputed with classical
    gemm — only the failed sub-multiplication loses its speedup, the
    call still returns.  ``check_finite=True`` additionally
    treats a NaN/Inf block as a failure.  ``timeout`` (seconds, threaded
    path only) bounds each job's wall-clock; an overrunning worker's
    block is recomputed classically in the caller thread (the stale
    worker result is discarded).  Every recovery action is recorded in
    ``report`` when one is passed.
    """
    return _ENGINE.threaded(
        A, B, algorithm, threads, lam=lam, strategy=strategy,
        schedule=schedule, gemm=gemm, steps=steps, retries=retries,
        timeout=timeout, check_finite=check_finite, report=report,
        plan_cache=plan_cache)


def _threaded_matmul_impl(
    A: np.ndarray,
    B: np.ndarray,
    algorithm,
    threads: int,
    lam: float | None = None,
    strategy: str = "hybrid",
    schedule: Schedule | None = None,
    gemm=None,
    steps: int = 1,
    retries: int = 0,
    timeout: float | None = None,
    check_finite: bool = False,
    report: ExecutionReport | None = None,
    plan_cache=None,
) -> np.ndarray:
    """The pre-refactor ``threaded_apa_matmul`` body, engine-owned.

    Only :mod:`repro.core.engine` may call this (staticcheck ENG001
    enforces it); everything else goes through the engine so tracing,
    guarding, and fault injection stay layered at one point.
    """
    if algorithm.is_surrogate:
        raise ValueError(
            f"{algorithm.name!r} is a metadata surrogate; real threaded "
            "execution needs full coefficients (use the simulator for it)"
        )
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
        raise ValueError(f"bad operand shapes {A.shape} @ {B.shape}")
    if threads < 1:
        raise ValueError("threads must be >= 1")
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if gemm is None:
        gemm = np.matmul

    from repro.core.lam import optimal_lambda, precision_bits

    dtype = np.result_type(A.dtype, B.dtype)
    if lam is None:
        d = precision_bits(dtype) if dtype.kind == "f" else 52
        lam = optimal_lambda(algorithm, d=d, steps=steps)

    if steps > 1:
        # Inner levels run sequentially inside each scheduled job.  They
        # go through the engine's sequential runner (not the public
        # shim) so an active execution_context cannot re-thread the
        # recursion from inside a pool worker.
        inner_gemm = gemm

        def gemm(S, T, _inner=inner_gemm):  # noqa: F811
            return _run_sequential(S, T, algorithm, lam, steps - 1,
                                   _inner, None, None)

    if retries < 0:
        raise ValueError("retries must be >= 0")
    if timeout is not None and timeout <= 0:
        raise ValueError("timeout must be positive")

    m, n, k = algorithm.m, algorithm.n, algorithm.k
    r = algorithm.rank

    # Observability: one umbrella span for the call, one span per
    # scheduled job (opened in the worker thread, so the Chrome trace
    # shows real per-thread lanes).  Disabled cost: this None check.
    tracer = _obs_tracer.ACTIVE

    from repro.core.plan import resolve_plan_cache

    cache = resolve_plan_cache(plan_cache)
    plan = workspace = None
    if (cache is not None and schedule is None
            and A.dtype == B.dtype and A.dtype.kind == "f"):
        plan = cache.plan_for(
            algorithm, A.shape[0], A.shape[1], B.shape[1], A.dtype, lam,
            steps=steps, mode="threaded", strategy=strategy,
            threads=threads,
        )
        schedule = plan.schedule
        part = plan.partition
        Un, Vn, Wn = plan.Un, plan.Vn, plan.Wn
        workspace = plan.checkout()
        Ap, Bp = plan.stage(workspace, A, B)
        a_blocks = (workspace.a_blocks[0] if workspace.a_blocks[0] is not None
                    else _flatten(Ap, m, n))
        b_blocks = (workspace.b_blocks[0] if workspace.b_blocks[0] is not None
                    else _flatten(Bp, n, k))
    else:
        if schedule is None:
            schedule = build_schedule(r, threads, strategy)
        part = BlockPartition(
            m, n, k, rows_a=A.shape[0], cols_a=A.shape[1], cols_b=B.shape[1],
            steps=steps,
        )
        Ap, Bp = part.prepare(A, B)
        Un, Vn, Wn = algorithm.evaluate(lam, dtype=dtype)
        a_blocks = _flatten(Ap, m, n)
        b_blocks = _flatten(Bp, n, k)

    def operands(i: int) -> tuple[np.ndarray, np.ndarray]:
        return (linear_combination(a_blocks, Un[:, i]),
                linear_combination(b_blocks, Vn[:, i]))

    def record(outcome: JobOutcome) -> None:
        if report is not None:
            report.jobs.append(outcome)

    def emit(kind: str, mult: int, detail: str, attempt: int = 0) -> None:
        if report is not None:
            report.events.emit(kind, f"mult {mult}", detail, attempt=attempt)

    def run_mult(i: int) -> tuple[np.ndarray, str, int, str, float, float]:
        """Returns ``(block, status, attempts, error_text, start, end)``.

        Timing is captured *inside* the job: all jobs of a phase are
        submitted with one timestamp, so using the phase submit time as
        the start would charge every job for its time in the queue (the
        bug render_execution_gantt used to inherit).
        """
        if tracer is None:
            return _run_mult(i)
        with tracer.span("executor.job", cat="parallel", mult=i,
                         algorithm=algorithm.name):
            return _run_mult(i)

    backoff_policy = (report.backoff if report is not None
                      and report.backoff is not None else DEFAULT_BACKOFF)

    def _run_mult(i: int) -> tuple[np.ndarray, str, int, str, float, float]:
        start = time.perf_counter()
        S, T = operands(i)
        error_text = ""
        backoff = None
        for attempt in range(1, retries + 2):
            try:
                M = gemm(S, T)
                if check_finite and not np.isfinite(M).all():
                    raise _WorkerNonFinite("block contains NaN/Inf")
            except Exception as exc:
                kind = ("worker-nonfinite"
                        if isinstance(exc, _WorkerNonFinite)
                        else "worker-error")
                error_text = f"{type(exc).__name__}: {exc}"
                emit(kind, i, error_text, attempt=attempt)
                if attempt <= retries:
                    # Back off before the retry: immediate re-runs fail
                    # for the same transient reason, and jitter keeps
                    # concurrent retriers desynchronized.  Keyed by the
                    # mult index so each job's schedule is independent
                    # and reproducible.
                    if backoff is None:
                        backoff = backoff_policy.sequence(key=i)
                    delay = backoff.wait()
                    if report is not None:
                        report.backoff_delays.append(delay)
                    emit("backoff", i, f"slept {delay * 1e3:.3f} ms "
                         "before retry", attempt=attempt)
                    emit("retry", i, f"attempt {attempt + 1} of "
                         f"{retries + 1}", attempt=attempt)
                continue
            status = "ok" if attempt == 1 else "retried"
            return M, status, attempt, "", start, time.perf_counter()
        # All attempts failed: classical gemm for this block only.
        emit("job-fallback", i, "classical gemm recomputed the block")
        return (np.matmul(S, T), "fallback", retries + 1, error_text,
                start, time.perf_counter())

    def classical_rescue(i: int) -> np.ndarray:
        S, T = operands(i)
        return np.matmul(S, T)

    outer_span = None
    if tracer is not None:
        outer_span = tracer.span(
            "threaded_apa_matmul", cat="parallel",
            algorithm=algorithm.name, threads=threads, strategy=strategy,
            shape=f"{tuple(A.shape)}@{tuple(B.shape)}", steps=steps)
        outer_span.__enter__()
    try:
        products: dict[int, np.ndarray] = {}
        if threads == 1:
            for i in range(r):
                M, status, attempts, err, t_start, t_end = run_mult(i)
                products[i] = M
                record(JobOutcome(i, status, attempts, t_start, t_end,
                                  error=err))
        else:
            pool = get_pool(threads)
            for phase in schedule.phases:
                t0 = time.perf_counter()
                futures = {
                    mult: pool.submit(run_mult, mult) for mult, _ in phase.jobs
                }
                for mult, future in futures.items():
                    try:
                        (M, status, attempts, err,
                         t_start, t_end) = future.result(timeout=timeout)
                    except FutureTimeoutError:
                        emit("worker-timeout", mult,
                             f"no result within {timeout}s; classical gemm "
                             "recomputed the block in the caller thread")
                        # The worker never reported, so the phase submit
                        # time is the only start we have for this job.
                        M, status, attempts, err, t_start, t_end = (
                            classical_rescue(mult), "timeout-fallback", 1,
                            f"timeout after {timeout}s", t0,
                            time.perf_counter())
                        future.cancel()
                    products[mult] = M
                    record(JobOutcome(mult, status, attempts, t_start,
                                      t_end, error=err))

        if workspace is not None:
            C = workspace.C[0]
            c_blocks = workspace.c_blocks[0]
        else:
            C = np.zeros((part.padded_rows_a, part.padded_cols_b),
                         dtype=dtype)
            c_blocks = _flatten(C, m, k)
        for q in range(len(c_blocks)):
            initialized = False
            target = c_blocks[q]
            for i in range(r):
                w = Wn[q, i]
                if w == 0:
                    continue
                M = products[i]
                if not initialized:
                    if w == 1:
                        np.copyto(target, M)
                    else:
                        np.multiply(M, w, out=target)
                    initialized = True
                elif w == 1:
                    target += M
                elif w == -1:
                    target -= M
                else:
                    target += w * M
            if not initialized:
                # Arena C is uninitialized memory, not np.zeros.
                target[...] = 0
        if workspace is not None:
            # Always copy out: the arena C belongs to the plan.
            return np.array(C[: A.shape[0], : B.shape[1]])
        return np.ascontiguousarray(part.crop(C))
    finally:
        if outer_span is not None:
            outer_span.__exit__(None, None, None)
        if workspace is not None:
            plan.release(workspace)
