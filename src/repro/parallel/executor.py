"""Real threaded execution of fast-matmul schedules.

NumPy's gemm releases the GIL, so a plain :class:`ThreadPoolExecutor`
realizes the paper's hybrid strategy faithfully on a real multicore host:
the ``q`` balanced rounds run ``p`` single-threaded gemms concurrently
(BLAS should be pinned to one thread via ``OMP_NUM_THREADS=1`` /
``threadpoolctl`` for exact correspondence), and the remainder
multiplications run one at a time letting BLAS use all its threads.

On the single-core CI host this degrades gracefully to sequential
execution (and the performance *figures* come from the simulator, see
DESIGN.md §2) — but the code path, schedule handling, and numerics are
the real thing and are exercised by the test suite.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.apa_matmul import linear_combination
from repro.linalg.blocking import BlockPartition, split_blocks
from repro.parallel.strategy import Schedule, build_schedule

__all__ = ["threaded_apa_matmul"]


def _flatten(X: np.ndarray, rows: int, cols: int) -> list[np.ndarray]:
    grid = split_blocks(X, rows, cols)
    return [grid[i][j] for i in range(rows) for j in range(cols)]


def threaded_apa_matmul(
    A: np.ndarray,
    B: np.ndarray,
    algorithm,
    threads: int,
    lam: float | None = None,
    strategy: str = "hybrid",
    schedule: Schedule | None = None,
    gemm=None,
    steps: int = 1,
) -> np.ndarray:
    """``steps`` recursive levels of ``algorithm``, outer level threaded.

    Parameters mirror :func:`repro.core.apa_matmul.apa_matmul`; the extra
    ``threads``/``strategy``/``schedule`` select the §3.2 parallelization
    of the *outer* level (inner levels, when ``steps > 1``, run
    sequentially inside each scheduled job — the paper parallelizes only
    across the top-level sub-products).  Surrogate algorithms are
    rejected — they have no coefficients to run.
    """
    if algorithm.is_surrogate:
        raise ValueError(
            f"{algorithm.name!r} is a metadata surrogate; real threaded "
            "execution needs full coefficients (use the simulator for it)"
        )
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
        raise ValueError(f"bad operand shapes {A.shape} @ {B.shape}")
    if threads < 1:
        raise ValueError("threads must be >= 1")
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if gemm is None:
        gemm = np.matmul

    from repro.core.lam import optimal_lambda, precision_bits

    dtype = np.result_type(A.dtype, B.dtype)
    if lam is None:
        d = precision_bits(dtype) if dtype.kind == "f" else 52
        lam = optimal_lambda(algorithm, d=d, steps=steps)

    if steps > 1:
        # inner levels run sequentially inside each scheduled job
        from repro.core.apa_matmul import apa_matmul

        inner_gemm = gemm

        def gemm(S, T, _inner=inner_gemm):  # noqa: F811
            return apa_matmul(S, T, algorithm, lam=lam, steps=steps - 1,
                              gemm=_inner)

    m, n, k = algorithm.m, algorithm.n, algorithm.k
    r = algorithm.rank
    if schedule is None:
        schedule = build_schedule(r, threads, strategy)

    plan = BlockPartition(
        m, n, k, rows_a=A.shape[0], cols_a=A.shape[1], cols_b=B.shape[1],
        steps=steps,
    )
    Ap, Bp = plan.prepare(A, B)
    Un, Vn, Wn = algorithm.evaluate(lam, dtype=dtype)

    a_blocks = _flatten(Ap, m, n)
    b_blocks = _flatten(Bp, n, k)

    def run_mult(i: int) -> np.ndarray:
        S = linear_combination(a_blocks, Un[:, i])
        T = linear_combination(b_blocks, Vn[:, i])
        return gemm(S, T)

    products: dict[int, np.ndarray] = {}
    if threads == 1:
        for i in range(r):
            products[i] = run_mult(i)
    else:
        with ThreadPoolExecutor(max_workers=threads) as pool:
            for phase in schedule.phases:
                futures = {
                    mult: pool.submit(run_mult, mult) for mult, _ in phase.jobs
                }
                for mult, future in futures.items():
                    products[mult] = future.result()

    C = np.zeros((plan.padded_rows_a, plan.padded_cols_b), dtype=dtype)
    c_blocks = _flatten(C, m, k)
    for q in range(len(c_blocks)):
        initialized = False
        target = c_blocks[q]
        for i in range(r):
            w = Wn[q, i]
            if w == 0:
                continue
            M = products[i]
            if not initialized:
                if w == 1:
                    np.copyto(target, M)
                else:
                    np.multiply(M, w, out=target)
                initialized = True
            elif w == 1:
                target += M
            elif w == -1:
                target -= M
            else:
                target += w * M
    return np.ascontiguousarray(plan.crop(C))
