"""Exponential backoff with decorrelated jitter for retry loops.

Both the hardened executor (:mod:`repro.parallel.executor`) and the
serving layer (:mod:`repro.serve`) retry failed work.  Retrying
*immediately* is the worst possible schedule under correlated failure —
a transiently-poisoned gemm seam or a saturated machine fails the retry
for the same reason it failed the first attempt, and N workers retrying
in lockstep synchronize into a thundering herd.  The standard fix is
exponential backoff with *decorrelated jitter* (Brooker, AWS
architecture blog): each delay is drawn uniformly from
``[base, prev * multiplier]`` and clamped to ``cap``, which both
desynchronizes concurrent retriers and grows the expected delay
geometrically without the full-jitter variance collapse.

Everything here is deterministic and clock-free by construction so
tests can pin exact schedules:

- randomness comes from :func:`numpy.random.default_rng` seeded with
  ``(seed, key)`` — two sequences with the same policy and key draw
  identical delays, and per-job ``key`` values decorrelate jobs without
  sharing a (lock-requiring) generator across threads;
- sleeping goes through the injectable ``sleep`` callable, so a fake
  clock records the schedule instead of actually waiting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["BackoffPolicy", "BackoffSequence"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Immutable description of one backoff schedule family.

    Attributes
    ----------
    base:
        Smallest possible delay (seconds); also the first draw's lower
        bound.
    cap:
        Upper clamp on every delay.  With decorrelated jitter the
        expected delay grows toward the cap geometrically.
    multiplier:
        Growth factor: draw ``i+1`` is uniform on
        ``[base, delay_i * multiplier]``.
    seed:
        Root seed.  Combined with a per-sequence ``key`` so concurrent
        retriers draw from decorrelated streams deterministically.
    sleep:
        Injectable sleeper (defaults to :func:`time.sleep`).  Tests
        pass a recorder to assert on the schedule with a fake clock.
    """

    base: float = 0.001
    cap: float = 0.100
    multiplier: float = 3.0
    seed: int = 0
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError("base must be positive")
        if self.cap < self.base:
            raise ValueError("cap must be >= base")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def sequence(self, key: int = 0) -> BackoffSequence:
        """A fresh delay sequence for one retry loop.

        ``key`` decorrelates sequences sharing this policy (use the job
        index / request id); equal ``(seed, key)`` pairs reproduce the
        exact same delays.
        """
        return BackoffSequence(policy=self, key=key)


@dataclass
class BackoffSequence:
    """Stateful delay iterator for a single retry loop (not shared)."""

    policy: BackoffPolicy
    key: int = 0
    delays: list[float] = field(default_factory=list)
    _prev: float = 0.0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng((self.policy.seed, self.key))

    def next_delay(self) -> float:
        """Draw the next decorrelated-jitter delay (seconds), no sleep."""
        p = self.policy
        hi = max(p.base, self._prev * p.multiplier)
        delay = float(min(p.cap, self._rng.uniform(p.base, hi)))
        self._prev = delay
        self.delays.append(delay)
        return delay

    def wait(self) -> float:
        """Draw the next delay, sleep it, and return it."""
        delay = self.next_delay()
        self.policy.sleep(delay)
        return delay
