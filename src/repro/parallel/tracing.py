"""Execution traces of fast-matmul schedules (Fig-2 with a time axis).

:func:`trace_schedule` prices every job of a schedule individually with
the machine model and lays the phases out on a wall-clock axis, producing
the data of a Gantt chart: per-job ``(multiplication, threads, start,
end)`` plus the bandwidth-bound combination intervals.  The total equals
:func:`repro.parallel.simulator.simulate_fast` by construction (asserted
in the tests), so the trace is a faithful decomposition of the simulated
time, useful for understanding *why* a strategy wins (e.g. the 12-thread
remainder products dominating the hybrid timeline of ``<4,4,4>``).

:func:`render_gantt` draws it as ASCII art.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.linalg.blocking import required_padding
from repro.machine.bandwidth import BandwidthModel
from repro.machine.gemm_model import GemmModel
from repro.machine.spec import MachineSpec, paper_machine
from repro.parallel.strategy import build_schedule

__all__ = ["JobSpan", "ScheduleTrace", "trace_schedule", "render_gantt",
           "render_execution_gantt"]


@dataclass(frozen=True)
class JobSpan:
    """One traced interval: a sub-multiplication or a combination pass."""

    label: str
    kind: str  # 'combine-in' | 'mult' | 'combine-out'
    threads: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class ScheduleTrace:
    algorithm: str
    threads: int
    strategy: str
    spans: tuple[JobSpan, ...]

    @property
    def total(self) -> float:
        return max(span.end for span in self.spans)

    def by_kind(self, kind: str) -> list[JobSpan]:
        return [s for s in self.spans if s.kind == kind]


def trace_schedule(
    algorithm,
    M: int,
    N: int,
    K: int,
    threads: int = 1,
    strategy: str = "hybrid",
    spec: MachineSpec | None = None,
    dtype_bytes: int = 4,
) -> ScheduleTrace:
    """Trace one recursive step of ``algorithm`` on the machine model.

    The layout mirrors the simulator exactly: the input combinations
    stream first, then the schedule's phases in order (each phase's wall
    time is its slowest job), then the output combinations.
    """
    spec = spec or paper_machine()
    gemm = GemmModel(spec)
    bw = BandwidthModel(spec)
    m, n, k = algorithm.m, algorithm.n, algorithm.k
    r = algorithm.rank
    schedule = build_schedule(r, threads, strategy)

    bm = required_padding(M, m) // m
    bn = required_padding(N, n) // n
    bk = required_padding(K, k) // k

    nnz_u, nnz_v, nnz_w = algorithm.nnz()
    bytes_a = bm * bn * dtype_bytes
    bytes_b = bn * bk * dtype_bytes
    bytes_c = bm * bk * dtype_bytes

    spans: list[JobSpan] = []
    clock = 0.0

    t_in = bw.time((nnz_u + r) * bytes_a + (nnz_v + r) * bytes_b, threads)
    spans.append(JobSpan("linear combinations (S_i, T_i)", "combine-in",
                         threads, clock, clock + t_in))
    clock += t_in

    for phase in schedule.phases:
        c = phase.concurrency
        durations = {
            mult: gemm.time(bm, bn, bk, threads=t, concurrent=c)
            for mult, t in phase.jobs
        }
        wall = max(durations.values())
        for mult, t in phase.jobs:
            spans.append(JobSpan(f"M{mult + 1}", "mult", t,
                                 clock, clock + durations[mult]))
        clock += wall

    t_out = bw.time((nnz_w + m * k) * bytes_c, threads)
    spans.append(JobSpan("output combinations (C_q)", "combine-out",
                         threads, clock, clock + t_out))

    return ScheduleTrace(algorithm=algorithm.name, threads=threads,
                         strategy=schedule.strategy, spans=tuple(spans))


def render_gantt(trace: ScheduleTrace, width: int = 72) -> str:
    """ASCII Gantt chart of a trace (one row per span)."""
    if width < 20:
        raise ValueError("width too small to render")
    total = trace.total
    lines = [
        f"{trace.algorithm} on {trace.threads} threads "
        f"({trace.strategy}): {total:.4f}s"
    ]
    label_w = max(len(s.label) for s in trace.spans) + 2
    bar_w = max(10, width - label_w - 12)
    for span in trace.spans:
        lo = int(round(span.start / total * bar_w))
        hi = max(lo + 1, int(round(span.end / total * bar_w)))
        bar = " " * lo + "#" * (hi - lo)
        lines.append(
            f"{span.label:<{label_w}}|{bar:<{bar_w}}| "
            f"{span.duration:8.4f}s x{span.threads}"
        )
    return "\n".join(lines)


_STATUS_GLYPH = {"ok": "#", "retried": "~", "fallback": "!",
                 "timeout-fallback": "X"}


def render_execution_gantt(report, width: int = 72) -> str:
    """ASCII Gantt of a *real* threaded run, failures highlighted.

    ``report`` is the :class:`~repro.parallel.executor.ExecutionReport`
    filled in by ``threaded_apa_matmul(..., report=...)``.  Healthy jobs
    draw with ``#``; retried jobs with ``~``; jobs recovered by the
    classical fallback with ``!``; timed-out jobs with ``X``.  Recovery
    events carry a monotonic timestamp on the same clock as the job
    spans, so each is overlaid as a ``^`` marker row at its position on
    the timeline (clamped to the chart for events stamped at the very
    edges), followed by its offset from the first job's start.
    """
    if width < 20:
        raise ValueError("width too small to render")
    if not report.jobs:
        return "(no jobs recorded)"
    origin = min(j.start for j in report.jobs)
    total = max(j.end for j in report.jobs) - origin
    total = total or 1e-12
    failed = len(report.failed_jobs)
    lines = [
        f"execution trace: {len(report.jobs)} jobs, "
        f"{failed} recovered" if failed else
        f"execution trace: {len(report.jobs)} jobs, all healthy"
    ]
    label_w = max(len(f"M{j.mult + 1}") for j in report.jobs) + 2
    bar_w = max(10, width - label_w - 24)
    for job in sorted(report.jobs, key=lambda j: (j.start, j.mult)):
        lo = int(round((job.start - origin) / total * bar_w))
        hi = max(lo + 1, int(round((job.end - origin) / total * bar_w)))
        glyph = _STATUS_GLYPH.get(job.status, "?")
        bar = " " * lo + glyph * (hi - lo)
        label = f"M{job.mult + 1}"
        lines.append(
            f"{label:<{label_w}}|{bar:<{bar_w}}| "
            f"{job.duration:8.4f}s {job.status}"
        )
    for event in report.events:
        offset = event.t - origin
        lo = int(round(min(max(offset, 0.0), total) / total * bar_w))
        lo = min(lo, bar_w - 1)
        marker = " " * lo + "^"
        lines.append(f"{'':<{label_w}}|{marker:<{bar_w}}| "
                     f"@+{offset:8.4f}s {event}")
    return "\n".join(lines)
