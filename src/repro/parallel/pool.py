"""Process-wide persistent worker pool for the APA hot path.

Creating a :class:`~concurrent.futures.ThreadPoolExecutor` costs thread
spawns and teardown joins; the seed executor paid that on *every*
``threaded_apa_matmul`` call.  A training loop issues thousands of
identically-shaped calls, so the pool here is created lazily on first
use, reused across calls, and resized only when a caller asks for a
different ``threads`` count (the common case — one thread count per
run — never rebuilds it).

All module state is guarded by ``_LOCK``: ``get_pool`` may be called
concurrently from several orchestrating threads, and the ``repro lint``
PAR001 rule statically checks that every rebind of this module's globals
happens under the lock.

The pool is intentionally *not* used for nested parallelism: inner
recursion levels of a threaded call run sequentially inside each worker
(paper §3.2 parallelizes only the top-level sub-products), so a worker
never calls :func:`get_pool` itself — resizing from within a worker
would deadlock on the shutdown join.
"""

from __future__ import annotations

import atexit
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.obs import tracer as _obs_tracer

__all__ = ["get_pool", "shutdown_pool", "pool_stats"]

_LOCK = threading.Lock()
_POOL: ThreadPoolExecutor | None = None
_POOL_THREADS: int = 0
_CREATES: int = 0
_RESIZES: int = 0


def get_pool(threads: int) -> ThreadPoolExecutor:
    """The shared executor, created lazily and resized only on change.

    Callers must *not* shut the returned pool down (no ``with`` block) —
    its lifetime is the process, ended by :func:`shutdown_pool` or the
    atexit hook.
    """
    global _POOL, _POOL_THREADS, _CREATES, _RESIZES
    if threads < 1:
        raise ValueError("threads must be >= 1")
    with _LOCK:
        if _POOL is not None and _POOL_THREADS == threads:
            return _POOL
        old = _POOL
        _POOL = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="repro-apa"
        )
        if old is not None:
            _RESIZES += 1
        _CREATES += 1
        _POOL_THREADS = threads
        pool = _POOL
    # Drain the old pool outside the lock: its jobs may themselves need
    # unrelated module state, and nothing below touches the globals.
    if old is not None:
        old.shutdown(wait=True)
    tracer = _obs_tracer.ACTIVE
    if tracer is not None:
        tracer.instant("pool-resize" if old is not None else "pool-create",
                       cat="pool", threads=threads)
    return pool


def shutdown_pool(wait: bool = True) -> None:
    """Tear the shared pool down (tests and interpreter exit)."""
    global _POOL, _POOL_THREADS
    with _LOCK:
        pool = _POOL
        _POOL = None
        _POOL_THREADS = 0
    if pool is not None:
        pool.shutdown(wait=wait)


def pool_stats() -> dict[str, int]:
    """Lifetime counters: current size, pool creations, resizes."""
    with _LOCK:
        return {
            "threads": _POOL_THREADS,
            "creates": _CREATES,
            "resizes": _RESIZES,
        }


# ``wait=True``: the seed registered ``wait=False``, which raced
# interpreter teardown — worker threads could still be alive while
# module globals were being cleared, and their executor queues leaked
# past exit (a ResourceWarning under ``-W error``, and the occasional
# "leaked semaphore" stderr noise from the mp machinery).  Joining is
# cheap here: by exit time the queue is idle, so the join returns as
# soon as each worker observes the shutdown sentinel.
atexit.register(shutdown_pool, wait=True)
