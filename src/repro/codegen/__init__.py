"""Code generation for bilinear algorithms (paper §3, Benson & Ballard).

The paper generates C++/OpenMP from the triplet encoding; we generate
specialized Python/NumPy: one function per algorithm with unrolled block
views, literal lambda-coefficient expressions, the ``r`` gemm calls, and
unrolled output combinations.  Generated code is importable, depends only
on NumPy, and is verified equivalent to the generic interpreter by the
test suite.
"""

from repro.codegen.generate import generate_source
from repro.codegen.cache import compile_algorithm, clear_cache

__all__ = ["generate_source", "compile_algorithm", "clear_cache"]
