"""Compile-and-memoize layer over the code generator."""

from __future__ import annotations

from repro.codegen.generate import generate_source

__all__ = ["compile_algorithm", "clear_cache"]

_CACHE: dict[str, object] = {}


def compile_algorithm(alg, func_name: str | None = None, cse: bool = False):
    """Compile the generated source and return the matmul callable.

    Compiled functions are memoized per (algorithm, cse); the returned
    callable has signature ``fn(A, B, lam=1.0, gemm=None)``.
    """
    key = f"{alg.name}:{func_name or ''}:{int(cse)}"
    if key in _CACHE:
        return _CACHE[key]
    name = func_name or f"apa_mm_{alg.name}"
    source = generate_source(alg, func_name=name, cse=cse)
    namespace: dict = {}
    code = compile(source, filename=f"<codegen:{alg.name}>", mode="exec")
    exec(code, namespace)
    fn = namespace[name]
    fn.__source__ = source  # keep the source inspectable for debugging
    _CACHE[key] = fn
    return fn


def clear_cache() -> None:
    """Drop all memoized compiled functions (mainly for tests)."""
    _CACHE.clear()
