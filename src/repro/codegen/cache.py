"""Compile-and-memoize layer over the code generator.

Also home of :class:`KernelArena`, the pooled-buffer companion the
generated kernels accept: ``fn(A, B, arena=arena)`` reuses the padded
staging buffers and the padded output across calls — the generated
kernel's analog of the interpreter-side workspace arenas in
:mod:`repro.core.plan`.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.codegen.generate import generate_source
from repro.obs import tracer as _obs_tracer

__all__ = ["compile_algorithm", "clear_cache", "cache_stats", "KernelArena"]

_LOCK = threading.Lock()
_CACHE: dict[str, object] = {}
_HITS = 0
_MISSES = 0


class KernelArena:
    """Reusable buffers for generated kernels, keyed by (tag, shape, dtype).

    Buffers are handed out as-is (possibly holding a previous call's
    data); the generated code re-zeroes whatever margins must be zero.
    Not thread-safe — a kernel writes into the arena's buffers for the
    whole call, so use one arena per thread.
    """

    def __init__(self) -> None:
        self._buffers: dict[tuple, np.ndarray] = {}

    def take(self, tag: str, shape: tuple[int, int], dtype) -> np.ndarray:
        key = (tag, shape, np.dtype(dtype).str)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
        return buf

    def nbytes(self) -> int:
        """Total bytes currently pooled (the arena's memory overhead)."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def clear(self) -> None:
        self._buffers.clear()


def compile_algorithm(alg, func_name: str | None = None, cse: bool = False):
    """Compile the generated source and return the matmul callable.

    Compiled functions are memoized per (algorithm, cse); the returned
    callable has signature ``fn(A, B, lam=1.0, gemm=None, arena=None)``
    (pass a :class:`KernelArena` to reuse padded buffers across calls).
    Memoization is thread-safe; a rare concurrent first compile keeps
    the first registration.
    """
    global _HITS, _MISSES
    key = f"{alg.name}:{func_name or ''}:{int(cse)}"
    with _LOCK:
        if key in _CACHE:
            _HITS += 1
            return _CACHE[key]
    name = func_name or f"apa_mm_{alg.name}"
    tracer = _obs_tracer.ACTIVE
    if tracer is None:
        fn = _compile(alg, name, cse)
    else:
        # Compiles are the expensive, rare path — worth a span each.
        with tracer.span("kernel.compile", cat="codegen",
                         algorithm=alg.name, cse=cse):
            fn = _compile(alg, name, cse)
    with _LOCK:
        if key in _CACHE:
            _HITS += 1
            return _CACHE[key]
        _MISSES += 1
        _CACHE[key] = fn
    return fn


def _compile(alg, name: str, cse: bool):
    source = generate_source(alg, func_name=name, cse=cse)
    namespace: dict = {}
    code = compile(source, filename=f"<codegen:{alg.name}>", mode="exec")
    exec(code, namespace)
    fn = namespace[name]
    fn.__source__ = source  # keep the source inspectable for debugging
    return fn


def cache_stats() -> dict[str, int]:
    """Lifetime compile-cache counters (size, hits, misses)."""
    with _LOCK:
        return {"size": len(_CACHE), "hits": _HITS, "misses": _MISSES}


def clear_cache() -> None:
    """Drop all memoized compiled functions (mainly for tests)."""
    with _LOCK:
        _CACHE.clear()
