"""Common-subexpression elimination for linear combinations.

The addition count of the naive ("write-once, no reuse") strategy is
``sum_i (nnz(col_i) - 1)``; published algorithm variants like
Strassen-Winograd beat it by *reusing* shared sub-sums (e.g.
``S1 = A21 + A22`` feeds three of Winograd's seven products).  This
module recovers such savings automatically with greedy pairwise CSE:

1. find the signed operand pair ``c1*x + c2*y`` occurring in the most
   combination columns (pairs are matched up to a common scale, so
   ``A - B`` also matches ``-A + B`` and ``2A - 2B``);
2. materialize it as a temporary, rewrite every column through it;
3. repeat until no pair repeats.

Temporaries can themselves contain temporaries, so chains like
Winograd's ``S2 = S1 - A11`` emerge naturally.  The result is an
:class:`EliminationPlan` — an ordered list of temporary definitions plus
rewritten columns — consumed by the code generator (``cse=True``) and by
the addition-cost analytics.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro.linalg.laurent import Laurent

__all__ = ["EliminationPlan", "eliminate_common_subexpressions", "naive_additions"]

#: Operand names: nonnegative ints are original operands; temporaries get
#: ids ``TEMP_BASE + t``.
TEMP_BASE = 1_000_000


@dataclass(frozen=True)
class EliminationPlan:
    """CSE result for one coefficient matrix.

    ``temps[t]`` is the definition of temporary ``TEMP_BASE + t`` as a
    ``{operand_id: Laurent}`` combination (over originals and earlier
    temporaries).  ``columns[i]`` is the rewritten combination of column
    ``i`` in the same form.
    """

    temps: tuple[dict, ...]
    columns: tuple[dict, ...]

    @property
    def additions(self) -> int:
        """Total adds: each k-term combination costs k - 1."""
        total = 0
        for combo in list(self.temps) + list(self.columns):
            total += max(0, len(combo) - 1)
        return total

    def expand(self, index: int) -> dict:
        """Flatten column ``index`` back to original operands (for
        verification that CSE preserved the algebra)."""
        def flatten(combo: dict) -> dict:
            out: dict = {}
            for op, coeff in combo.items():
                if op >= TEMP_BASE:
                    inner = flatten(self.temps[op - TEMP_BASE])
                    for op2, c2 in inner.items():
                        acc = out.get(op2, Laurent.zero()) + coeff * c2
                        if acc:
                            out[op2] = acc
                        else:
                            out.pop(op2, None)
                else:
                    acc = out.get(op, Laurent.zero()) + coeff
                    if acc:
                        out[op] = acc
                    else:
                        out.pop(op, None)
            return out

        return flatten(self.columns[index])


def naive_additions(M: np.ndarray) -> int:
    """Write-once additions without any reuse."""
    total = 0
    for i in range(M.shape[1]):
        nnz = sum(1 for entry in M[:, i] if entry)
        total += max(0, nnz - 1)
    return total


def _normalized_pair(op1: int, c1: Laurent, op2: int, c2: Laurent):
    """Canonical key of a signed pair up to a common scalar factor.

    The pair is keyed by the two operand ids plus the *ratio* ``c2/c1``
    (for monomial coefficients; general Laurent coefficients are keyed
    exactly, which only costs missed matches, never wrong ones).
    """
    if op1 > op2:
        op1, op2, c1, c2 = op2, op1, c2, c1
    t1, t2 = c1.terms, c2.terms
    if len(t1) == 1 and len(t2) == 1:
        (e1, a1), = t1.items()
        (e2, a2), = t2.items()
        return (op1, op2, "ratio", e2 - e1, Fraction(a2) / Fraction(a1))
    return (op1, op2, "exact", tuple(sorted(t1.items())),
            tuple(sorted(t2.items())))


def eliminate_common_subexpressions(
    M: np.ndarray, min_uses: int = 2, max_temps: int = 64
) -> EliminationPlan:
    """Run greedy pairwise CSE on a (rows x r) Laurent coefficient matrix."""
    columns: list[dict] = []
    for i in range(M.shape[1]):
        combo = {row: M[row, i] for row in range(M.shape[0]) if M[row, i]}
        columns.append(combo)

    temps: list[dict] = []
    while len(temps) < max_temps:
        # census of normalized pairs over all current combinations
        census: dict = {}
        for ci, combo in enumerate(columns):
            ops = sorted(combo)
            for a in range(len(ops)):
                for b in range(a + 1, len(ops)):
                    key = _normalized_pair(ops[a], combo[ops[a]],
                                           ops[b], combo[ops[b]])
                    census.setdefault(key, []).append((ci, ops[a], ops[b]))
        best_key, best_uses = None, []
        for key, uses in census.items():
            if len(uses) > len(best_uses):
                best_key, best_uses = key, uses
        if best_key is None or len(best_uses) < min_uses:
            break

        # define the temp from the first use's concrete coefficients
        ci0, opa, opb = best_uses[0]
        ca, cb = columns[ci0][opa], columns[ci0][opb]
        temp_id = TEMP_BASE + len(temps)
        temps.append({opa: ca, opb: cb})

        # rewrite every use: the column's pair equals scale * temp
        for ci, o1, o2 in best_uses:
            combo = columns[ci]
            if o1 not in combo or o2 not in combo:
                continue  # an earlier rewrite in this round consumed it
            # scale s such that combo[o1] == s * ca (monomial division)
            s = _divide(combo[o1] if o1 == opa else combo[o2], ca)
            if s is None:
                continue
            # confirm the second coefficient matches the same scale
            other = combo[o2] if o1 == opa else combo[o1]
            if other != s * cb:
                continue
            del combo[o1]
            del combo[o2]
            combo[temp_id] = s

    return EliminationPlan(temps=tuple(temps), columns=tuple(columns))


def _divide(num: Laurent, den: Laurent) -> Laurent | None:
    """Exact monomial division ``num / den`` (None when not monomial)."""
    tn, td = num.terms, den.terms
    if len(tn) == 1 and len(td) == 1:
        (en, an), = tn.items()
        (ed, ad), = td.items()
        return Laurent({en - ed: Fraction(an) / Fraction(ad)})
    if num == den:
        return Laurent.one()
    return None
