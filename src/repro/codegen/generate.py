"""Emit specialized Python source for one recursive step of an algorithm.

The generated function mirrors what the paper's framework emits in C++:

- block views of the (padded) operands — no copies;
- one linear-combination expression per multiplication, with the
  lambda-monomial coefficients inlined as literal expressions
  (``lam``, ``lam**-1``, ``-lam`` ...);
- ``r`` gemm calls;
- unrolled output-combination expressions assembling the result blocks.

Fractions are emitted as exact ratios (``(1/4)``) so the generated module
is readable and reproducible; coefficient arithmetic happens in the
operands' dtype at runtime, identical to the interpreter.
"""

from __future__ import annotations

from fractions import Fraction

from repro.algorithms.spec import BilinearAlgorithm
from repro.linalg.laurent import Laurent

__all__ = ["generate_source", "coefficient_expression"]


def _fraction_literal(value: Fraction) -> str:
    if value.denominator == 1:
        return str(value.numerator)
    return f"({value.numerator}/{value.denominator})"


def coefficient_expression(coeff: Laurent, var: str = "lam") -> str:
    """Render a Laurent coefficient as a Python expression string.

    ``1 -> '1'``, ``lambda -> 'lam'``, ``-lambda**-1 -> '(-lam**-1)'``,
    ``1 + lambda -> '(1 + lam)'``.
    """
    terms = coeff.terms
    if not terms:
        return "0"
    parts = []
    for exp in sorted(terms):
        c = terms[exp]
        if exp == 0:
            parts.append(_fraction_literal(c))
        else:
            power = var if exp == 1 else f"{var}**{exp}"
            if c == 1:
                parts.append(power)
            elif c == -1:
                parts.append(f"-{power}")
            else:
                parts.append(f"{_fraction_literal(c)}*{power}")
    if len(parts) == 1:
        expr = parts[0]
        # Wrap compound monomials (sign, power, or scale) so they embed
        # safely as factors; bare `lam`, integers, and already-parenthesized
        # fractions need nothing.
        needs_wrap = "lam" in expr and expr != "lam"
        return f"({expr})" if needs_wrap else expr
    return "(" + " + ".join(parts).replace("+ -", "- ") + ")"


def _combo_expression(coeffs, operands: list[str]) -> str:
    """Linear-combination expression like ``A00 - lam*A12``."""
    pieces: list[str] = []
    for coeff, name in zip(coeffs, operands):
        if not coeff:
            continue
        expr = coefficient_expression(coeff)
        if expr == "1":
            term = name
        elif expr == "-1":
            term = f"-{name}"
        else:
            term = f"{expr}*{name}"
        if not pieces:
            pieces.append(term)
        elif term.startswith("-"):
            pieces.append(f"- {term[1:]}")
        else:
            pieces.append(f"+ {term}")
    if not pieces:
        return "0"
    return " ".join(pieces)


def _emit_cse(w, M, operand_names: list[str], prefix: str) -> list[str]:
    """Emit temporaries for a coefficient matrix via CSE; return the
    per-column expression strings (over originals and temporaries)."""
    from repro.codegen.cse import TEMP_BASE, eliminate_common_subexpressions

    plan = eliminate_common_subexpressions(M)
    names = dict(enumerate(operand_names))
    for t, combo in enumerate(plan.temps):
        names[TEMP_BASE + t] = f"{prefix}{t}"
    for t, combo in enumerate(plan.temps):
        ops = sorted(combo)
        expr = _combo_expression([combo[o] for o in ops],
                                 [names[o] for o in ops])
        w(f"    {prefix}{t} = {expr}")
    exprs = []
    for combo in plan.columns:
        ops = sorted(combo)
        exprs.append(_combo_expression([combo[o] for o in ops],
                                       [names[o] for o in ops]))
    return exprs


def generate_source(
    alg: BilinearAlgorithm,
    func_name: str | None = None,
    cse: bool = False,
) -> str:
    """Return the source of a self-contained module implementing ``alg``.

    The module defines ``FUNC_NAME(A, B, lam=..., gemm=None, arena=None)``
    performing one recursive step, padding/cropping as needed.  ``cse=True``
    runs common-subexpression elimination over the linear combinations and
    emits shared temporaries (this is how the Winograd variant's 15-add
    schedule is realized from its rank decomposition).  Surrogates cannot
    be generated (no coefficients).

    ``arena`` accepts a :class:`repro.codegen.cache.KernelArena`: the
    padded-operand staging buffers and the padded output are then reused
    across calls instead of reallocated (the arena is not thread-safe —
    use one per thread).  The arena path always returns a fresh copy so
    the result never aliases pooled memory, and stale pad margins are
    re-zeroed before staging.
    """
    if alg.is_surrogate:
        raise ValueError(f"cannot generate code for surrogate {alg.name!r}")
    m, n, k, r = alg.m, alg.n, alg.k, alg.rank
    func_name = func_name or f"apa_mm_{alg.name}"

    a_names = [f"A{i}{j}" for i in range(m) for j in range(n)]
    b_names = [f"B{i}{j}" for i in range(n) for j in range(k)]

    lines: list[str] = []
    w = lines.append
    w('"""Generated by repro.codegen — do not edit."""')
    w("import numpy as np")
    w("")
    w("")
    w(f"def {func_name}(A, B, lam=1.0, gemm=None, arena=None):")
    w(f'    """One step of {alg.signature()} ({alg.name}); generated code."""')
    w("    if gemm is None:")
    w("        gemm = np.matmul")
    w("    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:")
    w("        raise ValueError('bad operand shapes %r @ %r' % (A.shape, B.shape))")
    w("    M0, N0 = A.shape")
    w("    K0 = B.shape[1]")
    w(f"    Mp = -(-M0 // {m}) * {m}")
    w(f"    Np = -(-N0 // {n}) * {n}")
    w(f"    Kp = -(-K0 // {k}) * {k}")
    w("    if (Mp, Np) != (M0, N0):")
    w("        if arena is None:")
    w("            Ap = np.zeros((Mp, Np), dtype=A.dtype)")
    w("        else:")
    w("            Ap = arena.take('Ap', (Mp, Np), A.dtype)")
    w("            Ap[M0:, :] = 0; Ap[:, N0:] = 0")
    w("        Ap[:M0, :N0] = A")
    w("    else:")
    w("        Ap = A")
    w("    if (Np, Kp) != (B.shape[0], K0):")
    w("        if arena is None:")
    w("            Bp = np.zeros((Np, Kp), dtype=B.dtype)")
    w("        else:")
    w("            Bp = arena.take('Bp', (Np, Kp), B.dtype)")
    w("            Bp[B.shape[0]:, :] = 0; Bp[:, K0:] = 0")
    w("        Bp[:B.shape[0], :K0] = B")
    w("    else:")
    w("        Bp = B")
    w(f"    bm, bn, bk = Mp // {m}, Np // {n}, Kp // {k}")
    for i in range(m):
        for j in range(n):
            w(f"    A{i}{j} = Ap[{i}*bm:{i + 1}*bm, {j}*bn:{j + 1}*bn]")
    for i in range(n):
        for j in range(k):
            w(f"    B{i}{j} = Bp[{i}*bn:{i + 1}*bn, {j}*bk:{j + 1}*bk]")
    w("")
    if cse:
        s_exprs = _emit_cse(w, alg.U, a_names, "Su")
        t_exprs = _emit_cse(w, alg.V, b_names, "Tv")
        for t in range(r):
            w(f"    P{t} = gemm({s_exprs[t]}, {t_exprs[t]})")
    else:
        for t in range(r):
            s_expr = _combo_expression(alg.U[:, t], a_names)
            t_expr = _combo_expression(alg.V[:, t], b_names)
            w(f"    P{t} = gemm({s_expr}, {t_expr})")
    w("")
    w("    if arena is None:")
    w("        C = np.empty((Mp, Kp), dtype=P0.dtype)")
    w("    else:")
    w("        C = arena.take('C', (Mp, Kp), P0.dtype)")
    m_names = [f"P{t}" for t in range(r)]
    if cse:
        c_exprs = _emit_cse(w, alg.W.T, m_names, "Wc")  # output combos are W rows
        for i in range(m):
            for j in range(k):
                q = i * k + j
                w(f"    C[{i}*bm:{i + 1}*bm, {j}*bk:{j + 1}*bk] = {c_exprs[q]}")
    else:
        for i in range(m):
            for j in range(k):
                q = i * k + j
                expr = _combo_expression(alg.W[q, :], m_names)
                w(f"    C[{i}*bm:{i + 1}*bm, {j}*bk:{j + 1}*bk] = {expr}")
    w("    if arena is not None:")
    w("        return np.array(C[:M0, :K0])")
    w("    if (Mp, Kp) != (M0, K0):")
    w("        return np.ascontiguousarray(C[:M0, :K0])")
    w("    return C")
    w("")
    return "\n".join(lines)
