"""Fit the gemm-model parameters to measurements.

Two uses:

- on a *real* multicore host, :func:`measure_gemm_curve` times actual
  gemms across dimensions and :func:`fit_gemm_curve` recovers
  ``(eff_max, half_dim)`` so the simulator can be re-anchored to that
  machine via :func:`calibrated_spec`;
- the paper-machine defaults in :mod:`repro.machine.spec` were chosen so
  the model reproduces the paper's reported ramp/plateau behaviour — the
  tests use this fitter to confirm the defaults are self-consistent
  (fitting model-generated data recovers the parameters).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import curve_fit

from repro.bench.timing import measure
from repro.machine.spec import MachineSpec

__all__ = ["fit_gemm_curve", "measure_gemm_curve", "calibrated_spec"]


def _efficiency_curve(s, eff_max, half_dim):
    s = np.asarray(s, dtype=float)
    return eff_max * s**2 / (s**2 + half_dim**2)


def fit_gemm_curve(
    dims: np.ndarray,
    gflops: np.ndarray,
    peak_gflops: float,
) -> tuple[float, float]:
    """Fit ``(eff_max, half_dim)`` to measured square-gemm throughput.

    ``dims`` are the square dimensions, ``gflops`` the achieved rates,
    ``peak_gflops`` the theoretical aggregate peak at the measured thread
    count.
    """
    dims = np.asarray(dims, dtype=float)
    gflops = np.asarray(gflops, dtype=float)
    if dims.shape != gflops.shape or dims.size < 2:
        raise ValueError("need matching arrays with at least 2 points")
    if peak_gflops <= 0:
        raise ValueError("peak must be positive")
    eff = gflops / peak_gflops
    popt, _ = curve_fit(
        _efficiency_curve, dims, eff,
        p0=(0.9, 200.0),
        bounds=([0.01, 1.0], [1.0, 1e5]),
        maxfev=10_000,
    )
    return float(popt[0]), float(popt[1])


def measure_gemm_curve(
    dims: tuple[int, ...] = (128, 256, 512, 1024),
    dtype=np.float32,
    repeats: int = 3,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Time real square gemms; returns ``(dims, achieved_gflops)``."""
    rng = np.random.default_rng(seed)
    rates = []
    for n in dims:
        A = rng.random((n, n)).astype(dtype)
        B = rng.random((n, n)).astype(dtype)
        t = measure(lambda: A @ B, repeats=repeats).best
        rates.append(2.0 * n**3 / t / 1e9)
    return np.asarray(dims, dtype=float), np.asarray(rates)


def calibrated_spec(
    base: MachineSpec,
    dims: np.ndarray,
    gflops: np.ndarray,
    threads: int = 1,
) -> MachineSpec:
    """Re-anchor a spec's sequential gemm curve to measurements.

    Only the sequential anchors are refit (multithreaded anchors require
    a multicore host and the corresponding measurements); peak is kept.
    """
    if threads != 1:
        raise NotImplementedError(
            "only sequential calibration is implemented; measure with one "
            "BLAS thread and refit the socket/machine anchors manually"
        )
    eff_max, half = fit_gemm_curve(dims, gflops, base.peak_flops(1) / 1e9)
    return base.with_params(gemm_eff_max_seq=eff_max, gemm_half_dim_seq=half)
