"""Multi-socket placement and the thread-vs-process cost model.

The process-backed executor (:mod:`repro.parallel.procpool`) wins when
the GIL-serialized linear combinations dominate; the thread executor
wins when process dispatch and shared-memory staging dominate.  Both
regimes are pure functions of the machine model already calibrated in
this package, so the decision is *simulatable*: on the 1-core CI box
the same inputs produce the same crossover, and the tests pin it.

Model, per call of the §3.2 schedule on ``workers`` ranks:

- **thread**: the simulator's predicted time, plus a per-job dispatch
  cost, plus the GIL serialization penalty — a ``gil_fraction`` of the
  combination time re-serialized per extra thread (combinations are
  interpreter-bound NumPy elementwise calls, not GIL-releasing gemms).
- **process**: the simulator's predicted time, plus a (much larger)
  per-job process dispatch cost, plus staging traffic through shared
  memory (padded A and B written + read once, the r product blocks
  written + read once) at single-core bandwidth, scaled by the NUMA
  penalty of the placement's remote fraction — workers past the first
  socket read staging written on socket 0.

Placement itself is compact pinning (fill socket 0, then 1, ...),
mirroring :meth:`~repro.machine.spec.MachineSpec.sockets_used`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.linalg.blocking import required_padding
from repro.machine.bandwidth import BandwidthModel
from repro.machine.spec import MachineSpec, paper_machine

__all__ = ["ProcessPlacement", "place_workers", "ExecutorCostModel",
           "default_cost_model"]


@dataclass(frozen=True)
class ProcessPlacement:
    """Where ``workers`` ranks land under compact pinning."""

    workers: int
    #: Ranks per socket, zero-padded to the machine's socket count.
    per_socket: tuple[int, ...]

    @property
    def cross_socket(self) -> bool:
        return sum(1 for c in self.per_socket if c > 0) > 1

    @property
    def remote_fraction(self) -> float:
        """Fraction of ranks whose staging reads cross the socket link
        (everything is staged from socket 0)."""
        return 1.0 - self.per_socket[0] / self.workers


def place_workers(spec: MachineSpec, workers: int) -> ProcessPlacement:
    """Compact placement of ``workers`` ranks on ``spec``."""
    spec.validate_threads(workers)
    per_socket = []
    remaining = workers
    for _ in range(spec.sockets):
        on_socket = min(remaining, spec.cores_per_socket)
        per_socket.append(on_socket)
        remaining -= on_socket
    return ProcessPlacement(workers=workers, per_socket=tuple(per_socket))


def _resolve(algorithm):
    if isinstance(algorithm, str):
        from repro.algorithms.catalog import get_algorithm

        return get_algorithm(algorithm)
    return algorithm


@dataclass(frozen=True)
class ExecutorCostModel:
    """Predicted wall time of one call on each executor.

    ``thread_dispatch_s`` / ``process_dispatch_s`` are per-job submit +
    result costs (a future through a thread queue vs a pickled spec
    through a process pipe); ``gil_fraction`` is the share of the
    combination time each extra thread re-serializes on the
    interpreter lock.  Defaults are order-of-magnitude CPython
    constants — the *decision* they produce, not the absolute times,
    is what the tests pin.
    """

    spec: MachineSpec
    thread_dispatch_s: float = 30e-6
    process_dispatch_s: float = 250e-6
    gil_fraction: float = 0.25

    def _timing(self, algorithm, M, N, K, workers, strategy, steps,
                dtype_bytes):
        from repro.parallel.simulator import simulate_fast

        return simulate_fast(algorithm, M, N, K, threads=workers,
                             strategy=strategy, steps=steps,
                             spec=self.spec, dtype_bytes=dtype_bytes)

    def thread_time(self, algorithm, M: int, N: int, K: int,
                    workers: int, strategy: str = "hybrid",
                    steps: int = 1, dtype_bytes: int = 4) -> float:
        algorithm = _resolve(algorithm)
        t = self._timing(algorithm, M, N, K, workers, strategy, steps,
                         dtype_bytes)
        dispatch = algorithm.rank * self.thread_dispatch_s
        gil = (self.gil_fraction * (t.t_input_combos + t.t_output_combos)
               * (workers - 1))
        return t.total + dispatch + gil

    def staging_time(self, algorithm, M: int, N: int, K: int,
                     workers: int, steps: int = 1,
                     dtype_bytes: int = 4) -> float:
        """Shared-memory staging cost of the process executor."""
        algorithm = _resolve(algorithm)
        m, n, k = algorithm.m, algorithm.n, algorithm.k
        Mp = required_padding(M, m, steps)
        Np = required_padding(N, n, steps)
        Kp = required_padding(K, k, steps)
        bm, bk = Mp // m, Kp // k
        traffic = 2 * (Mp * Np + Np * Kp
                       + algorithm.rank * bm * bk) * dtype_bytes
        placement = place_workers(self.spec, workers)
        numa = 1.0
        if placement.cross_socket:
            numa += placement.remote_fraction * (
                1.0 / self.spec.numa_bw_factor - 1.0)
        return BandwidthModel(self.spec).time(traffic, 1) * numa

    def process_time(self, algorithm, M: int, N: int, K: int,
                     workers: int, strategy: str = "hybrid",
                     steps: int = 1, dtype_bytes: int = 4) -> float:
        algorithm = _resolve(algorithm)
        t = self._timing(algorithm, M, N, K, workers, strategy, steps,
                         dtype_bytes)
        dispatch = algorithm.rank * self.process_dispatch_s
        staging = self.staging_time(algorithm, M, N, K, workers,
                                    steps=steps, dtype_bytes=dtype_bytes)
        return t.total + dispatch + staging

    def recommend_executor(self, algorithm, M: int, N: int, K: int,
                           workers: int, strategy: str = "hybrid",
                           steps: int = 1,
                           dtype_bytes: int = 4) -> str:
        """``'thread'`` or ``'process'`` — whichever the model predicts
        faster (single-rank calls never pay process overhead)."""
        if workers <= 1:
            return "thread"
        thread = self.thread_time(algorithm, M, N, K, workers,
                                  strategy, steps, dtype_bytes)
        process = self.process_time(algorithm, M, N, K, workers,
                                    strategy, steps, dtype_bytes)
        return "process" if process < thread else "thread"

    def crossover_dim(self, algorithm, workers: int,
                      strategy: str = "hybrid", steps: int = 1,
                      dtype_bytes: int = 4, lo: int = 64,
                      hi: int = 16384) -> int | None:
        """Smallest square dim in ``[lo, hi]`` (doubling scan) where the
        process executor wins, or ``None`` if threads win throughout."""
        dim = lo
        while dim <= hi:
            if self.recommend_executor(algorithm, dim, dim, dim, workers,
                                       strategy, steps,
                                       dtype_bytes) == "process":
                return dim
            dim *= 2
        return None


def default_cost_model() -> ExecutorCostModel:
    """The cost model on the paper's dual-socket machine."""
    return ExecutorCostModel(paper_machine())
