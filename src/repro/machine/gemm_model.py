"""Gemm performance model: efficiency ramps per thread count.

The model captures the three facts the paper's performance analysis rests
on (§3.3-§3.4):

1. sequential gemm reaches a high fraction of core peak quickly (plateau
   by a few hundred in dimension);
2. multithreaded gemm ramps up more slowly the more threads are used —
   at 12 threads "not achieving the plateau performance until dimension
   4000 or so" — which is what starves the remainder multiplications of
   the hybrid strategy;
3. many *concurrent independent* single-threaded gemms contend for shared
   L3 and memory bandwidth, throttling each a little.

Efficiency is modelled as ``eff(s, p) = eff_max(p) * s**2 / (s**2 +
h(p)**2)`` with the effective dimension ``s = (m*n*k)**(1/3)``, plateau
``eff_max(p)`` and ramp half-size ``h(p)`` interpolated between the
calibrated sequential / one-socket / whole-machine anchors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.spec import MachineSpec

__all__ = ["GemmModel"]


@dataclass(frozen=True)
class GemmModel:
    """Time and efficiency of ``gemm`` on a given machine."""

    spec: MachineSpec

    # ------------------------------------------------------------------
    # curve anchors
    # ------------------------------------------------------------------

    def eff_max(self, threads: int) -> float:
        """Plateau efficiency (fraction of aggregate peak) at ``threads``."""
        spec = self.spec
        spec.validate_threads(threads)
        eff = spec.gemm_eff_max_seq
        if threads > 1:
            eff *= spec.gemm_eff_socket_penalty
        if spec.sockets_used(threads) > 1:
            eff *= spec.gemm_eff_numa_penalty
        return eff

    def half_dim(self, threads: int) -> float:
        """Ramp half-size ``h(p)``: the dimension of 50% efficiency.

        Interpolates geometrically between the calibrated anchors at 1
        thread, one full socket, and the whole machine.
        """
        spec = self.spec
        spec.validate_threads(threads)
        cps, total = spec.cores_per_socket, spec.total_cores
        h1 = spec.gemm_half_dim_seq
        hs = spec.gemm_half_dim_socket
        hm = spec.gemm_half_dim_machine
        if threads == 1 or cps == 1 and spec.sockets == 1:
            return h1
        if threads <= cps:
            # geometric interpolation in log(threads) between 1 and cps
            if cps == 1:
                return hs
            t = (threads - 1) / (cps - 1)
            return h1 ** (1 - t) * hs**t
        if total == cps:
            return hs
        t = (threads - cps) / (total - cps)
        return hs ** (1 - t) * hm**t

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def efficiency(self, m: int, n: int, k: int, threads: int) -> float:
        """Fraction of the aggregate peak achieved on an ``<m,n,k>`` gemm."""
        if min(m, n, k) < 1:
            raise ValueError("gemm dims must be positive")
        s = (float(m) * float(n) * float(k)) ** (1.0 / 3.0)
        h = self.half_dim(threads)
        return self.eff_max(threads) * s * s / (s * s + h * h)

    def time(self, m: int, n: int, k: int, threads: int = 1, concurrent: int = 1) -> float:
        """Seconds to multiply ``(m x n) @ (n x k)`` with ``threads`` threads.

        ``concurrent`` is the number of *other-plus-this* independent gemms
        running simultaneously (hybrid strategy rounds); each suffers the
        contention throttle ``1 + gamma * (concurrent - 1)``.
        """
        if concurrent < 1:
            raise ValueError("concurrent must be >= 1")
        flops = 2.0 * m * n * k
        rate = self.spec.peak_flops(threads) * self.efficiency(m, n, k, threads)
        if threads > 1:
            # Real BLAS libraries choose their internal thread count per
            # problem size rather than drowning small gemms in parallel
            # overhead: a p-thread gemm runs at the best rate achievable
            # with up to p threads *on one socket* (the graceful fallback
            # is intra-socket; the cross-socket behaviour is what the
            # paper actually measured, NUMA penalty included).
            fallback_cap = min(threads, self.spec.cores_per_socket)
            rate = max(
                rate,
                max(self.spec.peak_flops(t) * self.efficiency(m, n, k, t)
                    for t in range(1, fallback_cap + 1)),
            )
        return flops / rate * self.spec.concurrency_throttle(concurrent)

    def gflops(self, m: int, n: int, k: int, threads: int = 1) -> float:
        """Achieved GFLOPS of a single gemm (true flops, not effective)."""
        return 2.0 * m * n * k / self.time(m, n, k, threads) / 1e9
