"""Roofline-style analytics for fast matmul algorithms.

The paper's recurring explanation for lost speedup is that the matrix
*additions* are memory-bandwidth bound while the multiplications are
compute bound (§3.4).  This module quantifies that: for one recursive
step of an algorithm on an ``M x N x K`` problem it computes

- the gemm flops (``r`` block products),
- the addition/streaming traffic of the write-once strategy, and
- the *arithmetic intensity* (flops per byte moved outside gemm),

and compares against the machine's balance point
``peak_flops / bandwidth`` to classify each configuration as compute- or
bandwidth-limited at a given thread count.  This predicts exactly the
paper's observation that adding cores pushes APA algorithms toward the
bandwidth roof (their intensity is fixed, but the balance point grows
with cores while bandwidth saturates).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.linalg.blocking import required_padding
from repro.machine.bandwidth import BandwidthModel
from repro.machine.spec import MachineSpec, paper_machine

__all__ = ["RooflinePoint", "roofline_analysis"]


@dataclass(frozen=True)
class RooflinePoint:
    """Roofline placement of one (algorithm, size, threads) configuration."""

    algorithm: str
    M: int
    N: int
    K: int
    threads: int
    gemm_flops: float
    stream_bytes: float
    machine_balance: float  # flops/byte at which compute == bandwidth

    @property
    def arithmetic_intensity(self) -> float:
        """Gemm flops per byte of non-gemm streaming traffic."""
        return self.gemm_flops / self.stream_bytes

    @property
    def bandwidth_limited(self) -> bool:
        """True when the additions dominate at this thread count."""
        return self.arithmetic_intensity < self.machine_balance

    @property
    def addition_time_share_bound(self) -> float:
        """Lower bound on the addition share of total time (both parts at
        their respective roofs)."""
        t_compute = self.gemm_flops  # in units of 1/peak
        t_stream = self.stream_bytes * self.machine_balance
        return t_stream / (t_stream + t_compute)


def roofline_analysis(
    algorithm,
    M: int,
    N: int,
    K: int,
    threads: int = 1,
    spec: MachineSpec | None = None,
    dtype_bytes: int = 4,
) -> RooflinePoint:
    """Place one fast multiplication on the machine's roofline."""
    spec = spec or paper_machine()
    bw = BandwidthModel(spec)
    m, n, k = algorithm.m, algorithm.n, algorithm.k
    r = algorithm.rank

    bm = required_padding(M, m) // m
    bn = required_padding(N, n) // n
    bk = required_padding(K, k) // k
    gemm_flops = 2.0 * r * bm * bn * bk

    nnz_u, nnz_v, nnz_w = algorithm.nnz()
    stream_bytes = (
        (nnz_u + r) * bm * bn + (nnz_v + r) * bn * bk
        + (nnz_w + m * k) * bm * bk
    ) * dtype_bytes

    balance = spec.peak_flops(threads) / bw.bandwidth(threads)
    return RooflinePoint(
        algorithm=algorithm.name,
        M=M, N=N, K=K,
        threads=threads,
        gemm_flops=gemm_flops,
        stream_bytes=stream_bytes,
        machine_balance=balance,
    )
