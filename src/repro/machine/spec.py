"""Machine specification (paper §3.1) and model parameters."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MachineSpec", "paper_machine"]


@dataclass(frozen=True)
class MachineSpec:
    """Hardware description plus the cost-model parameters.

    The structural fields (sockets, cores, peaks) come straight from the
    paper's §3.1; the curve parameters (``gemm_*``, ``concurrency_gamma``)
    are calibrated so the model reproduces the paper's reported
    efficiency behaviour (see :mod:`repro.machine.calibrate` and the
    shape assertions in the test suite).

    Attributes
    ----------
    sockets, cores_per_socket:
        Topology; ``total_cores`` is their product.
    peak_flops_core:
        Peak single-precision flops/s of one core (32 GFLOPS on the
        paper's 2.0 GHz Sandy Bridge with AVX).
    bw_core, bw_socket:
        Achievable memory bandwidth (bytes/s) of one core and of a
        saturated socket.
    numa_bw_factor:
        Fraction of the second socket's bandwidth realized without
        NUMA-aware placement (the paper notes its code lacks it).
    gemm_eff_max_seq:
        Plateau efficiency of single-threaded gemm (fraction of core
        peak).
    gemm_eff_socket_penalty, gemm_eff_numa_penalty:
        Multiplicative plateau penalties when using a full socket and
        when spanning sockets.
    gemm_half_dim_seq:
        Ramp half-size of sequential gemm: efficiency is
        ``eff_max * s**2 / (s**2 + h**2)`` in the effective dimension
        ``s = (m n k)**(1/3)``.
    gemm_half_dim_socket, gemm_half_dim_machine:
        Ramp half-sizes at one full socket and at the full machine
        (the "much shallower" 12-thread ramp).
    concurrency_gamma:
        Slowdown per extra concurrent independent single-threaded gemm
        on the same socket (shared L3/bandwidth contention).
    concurrency_gamma_numa:
        Extra slowdown per concurrent gemm beyond one socket's cores —
        cross-socket contention is much worse without NUMA-aware
        placement (which the paper's code lacks, §3.4).  A batch of
        ``c`` concurrent gemms runs
        ``1 + gamma*(min(c, cps) - 1) + gamma_numa*max(0, c - cps)``
        times slower than one alone.
    """

    name: str = "generic"
    sockets: int = 1
    cores_per_socket: int = 1
    peak_flops_core: float = 32e9
    bw_core: float = 14e9
    bw_socket: float = 42e9
    numa_bw_factor: float = 0.45
    gemm_eff_max_seq: float = 0.92
    gemm_eff_socket_penalty: float = 0.98
    gemm_eff_numa_penalty: float = 0.91
    gemm_half_dim_seq: float = 250.0
    gemm_half_dim_socket: float = 700.0
    gemm_half_dim_machine: float = 2600.0
    concurrency_gamma: float = 0.015
    concurrency_gamma_numa: float = 0.04

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ValueError("topology fields must be positive")
        if self.peak_flops_core <= 0 or self.bw_core <= 0 or self.bw_socket <= 0:
            raise ValueError("rates must be positive")
        if not (0 < self.gemm_eff_max_seq <= 1):
            raise ValueError("gemm_eff_max_seq must be in (0, 1]")

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    def peak_flops(self, threads: int) -> float:
        """Aggregate peak of ``threads`` cores (the Fig-3 dotted line uses
        the classical-algorithm peak at the given thread count)."""
        self.validate_threads(threads)
        return threads * self.peak_flops_core

    def validate_threads(self, threads: int) -> None:
        if not (1 <= threads <= self.total_cores):
            raise ValueError(
                f"{threads} threads out of range for {self.total_cores}-core "
                f"machine {self.name!r}"
            )

    def concurrency_throttle(self, concurrent: int) -> float:
        """Slowdown factor for ``concurrent`` independent 1-thread gemms."""
        if concurrent < 1:
            raise ValueError("concurrent must be >= 1")
        cps = self.cores_per_socket
        within = min(concurrent, cps) - 1
        across = max(0, concurrent - cps)
        return 1.0 + self.concurrency_gamma * within + self.concurrency_gamma_numa * across

    def sockets_used(self, threads: int) -> int:
        """Sockets touched by ``threads`` cores under compact pinning."""
        self.validate_threads(threads)
        return -(-threads // self.cores_per_socket)  # ceil division

    def with_params(self, **kwargs) -> "MachineSpec":
        """A copy with some model parameters replaced (for calibration)."""
        return replace(self, **kwargs)


def paper_machine() -> MachineSpec:
    """The paper's dual-socket Sandy Bridge Xeon E5-2620 (§3.1)."""
    return MachineSpec(
        name="xeon-e5-2620",
        sockets=2,
        cores_per_socket=6,
        peak_flops_core=32e9,
        bw_core=14e9,
        bw_socket=42e9,
    )
