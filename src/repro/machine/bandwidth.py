"""Memory-bandwidth model for the (bandwidth-bound) matrix additions.

Paper §3.4: "the additions are memory bandwidth bound, and the memory
bandwidth does not scale with the number of cores".  We model achievable
streaming bandwidth as

- ``min(p_on_socket * bw_core, bw_socket)`` per socket — a few cores
  saturate a socket;
- the second socket contributes only ``numa_bw_factor`` of its bandwidth
  (no NUMA-aware placement in the paper's code).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.spec import MachineSpec

__all__ = ["BandwidthModel"]


@dataclass(frozen=True)
class BandwidthModel:
    """Streaming bandwidth and elementwise-traffic timing."""

    spec: MachineSpec

    def bandwidth(self, threads: int) -> float:
        """Achievable bytes/s with ``threads`` cores, compactly pinned."""
        spec = self.spec
        spec.validate_threads(threads)
        cps = spec.cores_per_socket
        total = 0.0
        remaining = threads
        socket_index = 0
        while remaining > 0:
            on_socket = min(remaining, cps)
            socket_bw = min(on_socket * spec.bw_core, spec.bw_socket)
            if socket_index > 0:
                socket_bw *= spec.numa_bw_factor
            total += socket_bw
            remaining -= on_socket
            socket_index += 1
        return total

    def time(self, traffic_bytes: float, threads: int) -> float:
        """Seconds to stream ``traffic_bytes`` with ``threads`` cores."""
        if traffic_bytes < 0:
            raise ValueError("traffic must be nonnegative")
        return traffic_bytes / self.bandwidth(threads)
