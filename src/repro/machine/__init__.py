"""Calibrated machine model of the paper's experimental platform.

The paper measures on a dual-socket Intel Xeon E5-2620 (Sandy Bridge):
2 sockets x 6 cores, 2.0 GHz, 32 single-precision GFLOPS peak per core,
15 MB L3 per socket, MKL gemm.  Pure Python cannot reproduce cache-level
timing (DESIGN.md §2), so performance figures are regenerated from this
discrete cost model, whose handful of parameters encode the paper's own
reported curves:

- a gemm *efficiency ramp* per thread count (§3.4: the 12-thread ramp is
  "much shallower ... not achieving the plateau performance until
  dimension 4000 or so"),
- bandwidth-bound matrix additions that do not scale with cores (§3.4),
- a NUMA penalty when spanning sockets, and
- a contention throttle for many concurrent single-threaded gemms.

:mod:`repro.machine.calibrate` fits the same parameters to real
measurements for use on actual multicore hosts.
"""

from repro.machine.spec import MachineSpec, paper_machine
from repro.machine.gemm_model import GemmModel
from repro.machine.bandwidth import BandwidthModel
from repro.machine.numa import (
    ExecutorCostModel,
    ProcessPlacement,
    default_cost_model,
    place_workers,
)

__all__ = [
    "MachineSpec",
    "paper_machine",
    "GemmModel",
    "BandwidthModel",
    "ExecutorCostModel",
    "ProcessPlacement",
    "place_workers",
    "default_cost_model",
]
