"""Cached execution plans and pooled workspace arenas (the hot-path engine).

The interpreter in :mod:`repro.core.apa_matmul` is correct but pays per
call for work that depends only on ``(algorithm, shape, dtype, lambda,
steps)``: building the :class:`~repro.linalg.blocking.BlockPartition`,
evaluating the Laurent coefficients at ``lambda``, scanning their zero
patterns, and allocating every ``S``/``T``/``M``/``C`` buffer.  A
training loop issues thousands of calls with the *same* key per epoch
(each Dense layer's forward and two backward products have fixed
shapes), so an :class:`ExecutionPlan` precomputes all of it once:

- the block partition and padded dims;
- the numeric ``(Un, Vn, Wn)`` (via the spec's memoized ``evaluate``);
- per-multiplication nonzero term lists (no per-call zero scans);
- a pooled workspace *arena* — padded operand copies, per-level
  ``S_i``/``T_i`` combination buffers, the gemm output slot, scalar
  scratch, and the padded ``C`` — matching the footprint priced by
  :func:`repro.core.memory.workspace_bytes`.

Workspaces are checked out per call from a small free list, so one plan
serves concurrent callers (the threaded executor's workers recurse into
sequential plans) without aliasing.  Plans are acquired through a
bounded, thread-safe LRU :class:`PlanCache`; the process-wide default
cache is what :func:`repro.core.apa_matmul.apa_matmul` and friends use
unless told otherwise.

Arithmetic is bit-identical to the interpreter: the same write-once
combination order, the same accumulation order of products into output
blocks, the same dtype per operation — only the allocations and the
bookkeeping moved out of the loop.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.algorithms.spec import AlgorithmLike
from repro.core.memory import WorkspaceEstimate, workspace_bytes
from repro.linalg.blocking import BlockPartition, split_blocks
from repro.obs import tracer as _obs_tracer
from repro.robustness.events import EventLog
from repro.types import GemmFn

__all__ = [
    "PlanKey",
    "ExecutionPlan",
    "PlanCache",
    "default_plan_cache",
    "configure_plan_cache",
    "resolve_plan_cache",
    "term_lists",
]

#: Execution modes a plan can be built for.
PLAN_MODES = ("sequential", "threaded", "batched")


@dataclass(frozen=True)
class PlanKey:
    """Everything that determines a plan's precomputed state.

    ``alg_id`` is the ``id()`` of the algorithm object: catalog entries
    are singletons (``get_algorithm`` memoizes), and including the
    identity means two distinct objects that happen to share a name can
    never alias each other's coefficient tables.
    """

    algorithm: str
    alg_id: int
    rows_a: int
    cols_a: int
    cols_b: int
    dtype: str
    lam: float
    steps: int
    mode: str
    strategy: str
    threads: int


def term_lists(
    Un: np.ndarray, Vn: np.ndarray, Wn: np.ndarray
) -> tuple[tuple, tuple, tuple]:
    """Nonzero ``(index, coeff)`` lists per multiplication.

    ``s_terms[i]``/``t_terms[i]`` hold the nonzero ``(block, coeff)``
    pairs of column ``i`` of ``Un``/``Vn``; ``w_terms[i]`` the nonzero
    ``(output_block, coeff)`` pairs of column ``i`` of ``Wn``.
    Coefficients stay numpy scalars of the evaluated dtype, so the
    combination arithmetic is bitwise identical to indexing the columns.
    """
    r = Un.shape[1]
    s_terms = tuple(
        tuple((p, Un[p, i]) for p in range(Un.shape[0]) if Un[p, i] != 0)
        for i in range(r)
    )
    t_terms = tuple(
        tuple((p, Vn[p, i]) for p in range(Vn.shape[0]) if Vn[p, i] != 0)
        for i in range(r)
    )
    w_terms = tuple(
        tuple((q, Wn[q, i]) for q in range(Wn.shape[0]) if Wn[q, i] != 0)
        for i in range(r)
    )
    return s_terms, t_terms, w_terms


def _flatten(X: np.ndarray, rows: int, cols: int) -> list[np.ndarray]:
    grid = split_blocks(X, rows, cols)
    return [grid[i][j] for i in range(rows) for j in range(cols)]


class _Workspace:
    """One call's worth of arena buffers for a plan.

    Checked out of the plan's free list for the duration of a call, so
    concurrent executions of the same plan never share a buffer.
    """

    __slots__ = ("Ap", "Bp", "C", "S", "T", "P",
                 "a_blocks", "b_blocks", "c_blocks", "_scratch")

    def __init__(self, plan: ExecutionPlan) -> None:
        part = plan.partition
        dtype = plan.dtype
        m, n, k = part.m, part.n, part.k
        Mp, Np, Kp = (part.padded_rows_a, part.padded_cols_a,
                      part.padded_cols_b)
        # Padded staging copies exist only when shapes are ragged; the
        # zero margins are written once here and never touched again.
        self.Ap = np.zeros((Mp, Np), dtype=dtype) if plan.pads_a else None
        self.Bp = np.zeros((Np, Kp), dtype=dtype) if plan.pads_b else None
        self._scratch: dict[tuple[int, int], np.ndarray] = {}

        if plan.mode == "threaded":
            # The threaded executor keeps all r products alive and only
            # needs the staged operands plus the padded output here.
            self.C = [np.empty((Mp, Kp), dtype=dtype)]
            self.S = self.T = []
            self.P = None
            self.a_blocks = [
                _flatten(self.Ap, m, n) if self.Ap is not None else None]
            self.b_blocks = [
                _flatten(self.Bp, n, k) if self.Bp is not None else None]
            self.c_blocks = [_flatten(self.C[0], m, k)]
            return

        steps = plan.key.steps
        self.C = []
        self.S = []
        self.T = []
        bm, bn, bk = Mp, Np, Kp
        for _ in range(steps):
            self.C.append(np.empty((bm, bk), dtype=dtype))
            bm, bn, bk = bm // m, bn // n, bk // k
            self.S.append(np.empty((bm, bn), dtype=dtype))
            self.T.append(np.empty((bn, bk), dtype=dtype))
        self.P = np.empty((bm, bk), dtype=dtype)
        # Block views are precomputable wherever the underlying buffer
        # is arena-owned: level 0 over the staged operands (when they
        # exist), level l >= 1 over the previous level's S/T buffers.
        self.a_blocks = [None] * steps
        self.b_blocks = [None] * steps
        if self.Ap is not None:
            self.a_blocks[0] = _flatten(self.Ap, m, n)
        if self.Bp is not None:
            self.b_blocks[0] = _flatten(self.Bp, n, k)
        for lvl in range(1, steps):
            self.a_blocks[lvl] = _flatten(self.S[lvl - 1], m, n)
            self.b_blocks[lvl] = _flatten(self.T[lvl - 1], n, k)
        self.c_blocks = [_flatten(C, m, k) for C in self.C]

    def scratch(self, shape: tuple[int, int], dtype) -> np.ndarray:
        """A reusable scalar-scratch buffer of the given shape."""
        buf = self._scratch.get(shape)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._scratch[shape] = buf
        return buf


class ExecutionPlan:
    """Precomputed state + pooled arenas for one matmul configuration.

    Build through :meth:`PlanCache.plan_for` (or the module default via
    :func:`default_plan_cache`), not directly — the cache is what makes
    the precomputation pay off.
    """

    def __init__(self, algorithm: AlgorithmLike, key: PlanKey) -> None:
        if key.mode not in PLAN_MODES:
            raise ValueError(f"unknown plan mode {key.mode!r}")
        self.key = key
        self.algorithm = algorithm
        self.dtype = np.dtype(key.dtype)
        self.partition = BlockPartition(
            algorithm.m, algorithm.n, algorithm.k,
            rows_a=key.rows_a, cols_a=key.cols_a, cols_b=key.cols_b,
            steps=key.steps if key.mode != "batched" else 1,
        )
        self.pads_a = (self.partition.padded_rows_a != key.rows_a
                       or self.partition.padded_cols_a != key.cols_a)
        self.pads_b = (self.partition.padded_cols_a != key.cols_a
                       or self.partition.padded_cols_b != key.cols_b)
        self.Un, self.Vn, self.Wn = algorithm.evaluate(
            key.lam, dtype=self.dtype)
        self.rank = algorithm.rank
        self.s_terms, self.t_terms, self.w_terms = term_lists(
            self.Un, self.Vn, self.Wn)
        self.schedule = None
        if key.mode == "threaded":
            from repro.parallel.strategy import build_schedule

            self.schedule = build_schedule(self.rank, key.threads,
                                           key.strategy)
        self._free: list[_Workspace] = []
        self._lock = threading.Lock()
        self.workspaces_built = 0
        self.executions = 0

    @property
    def mode(self) -> str:
        return self.key.mode

    @property
    def estimate(self) -> WorkspaceEstimate:
        """The arena footprint priced by the §3.3 workspace model."""
        return workspace_bytes(
            self.algorithm, self.key.rows_a, self.key.cols_a,
            self.key.cols_b, steps=self.key.steps,
            dtype_bytes=self.dtype.itemsize,
            parallel=self.key.mode == "threaded",
        )

    # ------------------------------------------------------------------
    # workspace pool
    # ------------------------------------------------------------------

    def checkout(self) -> _Workspace:
        """Acquire a workspace (reused when free, built when not)."""
        if self.key.mode == "batched":
            raise ValueError("batched plans carry no workspace arena "
                             "(the batch dimension is not part of the key)")
        with self._lock:
            self.executions += 1
            if self._free:
                return self._free.pop()
            self.workspaces_built += 1
        return _Workspace(self)

    def release(self, ws: _Workspace) -> None:
        with self._lock:
            self._free.append(ws)

    # ------------------------------------------------------------------
    # staging
    # ------------------------------------------------------------------

    def stage(self, ws: _Workspace, A: np.ndarray,
              B: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Copy ragged operands into the padded arena (views otherwise)."""
        if ws.Ap is None:
            Ap = A
        else:
            ws.Ap[: self.key.rows_a, : self.key.cols_a] = A
            Ap = ws.Ap
        if ws.Bp is None:
            Bp = B
        else:
            ws.Bp[: self.key.cols_a, : self.key.cols_b] = B
            Bp = ws.Bp
        return Ap, Bp

    # ------------------------------------------------------------------
    # sequential execution
    # ------------------------------------------------------------------

    def execute(self, A: np.ndarray, B: np.ndarray,
                gemm: GemmFn | None = None) -> np.ndarray:
        """Run the plan on concrete operands (sequential mode).

        ``gemm`` overrides the base-case multiply exactly as in
        :func:`~repro.core.apa_matmul.apa_matmul` (the fault-injection
        seam); the default routes through ``np.matmul`` writing straight
        into the arena's product slot.

        With no tracer installed this method is a single extra branch
        over :meth:`_execute` (the un-instrumented body —
        ``bench/obs_overhead.py`` times the two against each other).
        """
        tracer = _obs_tracer.ACTIVE
        if tracer is None:
            return self._execute(A, B, gemm)
        with tracer.span(
            "plan.execute", cat="core", algorithm=self.key.algorithm,
            shape=f"({self.key.rows_a},{self.key.cols_a})"
                  f"@({self.key.cols_a},{self.key.cols_b})",
            steps=self.key.steps,
        ):
            return self._execute(A, B, gemm)

    def _execute(self, A: np.ndarray, B: np.ndarray,
                 gemm: GemmFn | None = None) -> np.ndarray:
        if self.key.mode != "sequential":
            raise ValueError(f"execute() is for sequential plans, "
                             f"this one is {self.key.mode!r}")
        if A.shape != (self.key.rows_a, self.key.cols_a) \
                or B.shape != (self.key.cols_a, self.key.cols_b):
            raise ValueError(
                f"operands {A.shape} @ {B.shape} do not match plan key "
                f"({self.key.rows_a},{self.key.cols_a})"
                f"@({self.key.cols_a},{self.key.cols_b})")
        ws = self.checkout()
        try:
            m, n, k = self.partition.m, self.partition.n, self.partition.k
            Ap, Bp = self.stage(ws, A, B)
            a0 = ws.a_blocks[0] if ws.a_blocks[0] is not None \
                else _flatten(Ap, m, n)
            b0 = ws.b_blocks[0] if ws.b_blocks[0] is not None \
                else _flatten(Bp, n, k)
            C = self._run_level(ws, 0, a0, b0, gemm)
            # Always hand back a fresh array: the arena C is reused by
            # the next call through this plan.
            return np.array(C[: self.key.rows_a, : self.key.cols_b])
        finally:
            self.release(ws)

    def _combine(self, terms, blocks, out: np.ndarray, ws: _Workspace,
                 allow_view: bool) -> np.ndarray:
        """Write-once linear combination from a precomputed term list.

        Mirrors :func:`~repro.core.apa_matmul.linear_combination` term
        for term; ``allow_view`` (base level only) keeps the
        single-block/coefficient-1 zero-copy path, while inner levels
        must materialize into ``out`` because the next level's
        precomputed block views alias it.
        """
        if not terms:
            out[...] = 0
            return out
        idx0, c0 = terms[0]
        if len(terms) == 1 and c0 == 1:
            if allow_view:
                return blocks[idx0]
            np.copyto(out, blocks[idx0])
            return out
        if c0 == 1:
            np.copyto(out, blocks[idx0])
        else:
            np.multiply(blocks[idx0], c0, out=out)
        for idx, c in terms[1:]:
            if c == 1:
                out += blocks[idx]
            elif c == -1:
                out -= blocks[idx]
            else:
                scr = ws.scratch(out.shape, out.dtype)
                np.multiply(blocks[idx], c, out=scr)
                out += scr
        return out

    def _run_level(self, ws: _Workspace, level: int, a_blocks, b_blocks,
                   gemm: GemmFn | None) -> np.ndarray:
        base = level == self.key.steps - 1
        S_buf, T_buf = ws.S[level], ws.T[level]
        c_blocks = ws.c_blocks[level]
        initialized = [False] * len(c_blocks)
        for i in range(self.rank):
            S = self._combine(self.s_terms[i], a_blocks, S_buf, ws,
                              allow_view=base)
            T = self._combine(self.t_terms[i], b_blocks, T_buf, ws,
                              allow_view=base)
            if base:
                if gemm is None:
                    M = np.matmul(S, T, out=ws.P)
                else:
                    M = gemm(S, T)
            else:
                M = self._run_level(ws, level + 1, ws.a_blocks[level + 1],
                                    ws.b_blocks[level + 1], gemm)
            for q, w in self.w_terms[i]:
                target = c_blocks[q]
                if not initialized[q]:
                    if w == 1:
                        np.copyto(target, M)
                    else:
                        np.multiply(M, w, out=target)
                    initialized[q] = True
                elif w == 1:
                    target += M
                elif w == -1:
                    target -= M
                else:
                    scr = ws.scratch(target.shape, target.dtype)
                    np.multiply(M, w, out=scr)
                    target += scr
        # Output blocks no multiplication contributes to (possible for
        # padded partitions of degenerate rules) must not leak stale
        # arena data.
        for q, done in enumerate(initialized):
            if not done:
                c_blocks[q][...] = 0
        return ws.C[level]


class PlanCache:
    """Bounded, thread-safe LRU cache of :class:`ExecutionPlan` objects.

    Hit/miss/evict counters are kept for the bench harness; pass an
    :class:`~repro.robustness.events.EventLog` to additionally emit a
    ``plan-miss``/``plan-evict`` event per cache action (the same sink
    the guard rails use).
    """

    def __init__(self, maxsize: int = 64, log: EventLog | None = None) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.log = log
        self._lock = threading.Lock()
        self._plans: OrderedDict[PlanKey, ExecutionPlan] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def plan_for(
        self,
        algorithm: AlgorithmLike,
        rows_a: int,
        cols_a: int,
        cols_b: int,
        dtype,
        lam: float,
        steps: int = 1,
        mode: str = "sequential",
        strategy: str = "none",
        threads: int = 1,
    ) -> ExecutionPlan:
        """Get-or-build the plan for a fully resolved configuration."""
        key = PlanKey(
            algorithm=algorithm.name, alg_id=id(algorithm),
            rows_a=rows_a, cols_a=cols_a, cols_b=cols_b,
            dtype=np.dtype(dtype).str, lam=float(lam), steps=steps,
            mode=mode, strategy=strategy, threads=threads,
        )
        tracer = _obs_tracer.ACTIVE
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.hits += 1
        if plan is not None:
            if tracer is not None:
                tracer.instant("plan-hit", cat="plan",
                               algorithm=key.algorithm,
                               shape=f"{key.rows_a}x{key.cols_a}x"
                                     f"{key.cols_b}")
            return plan
        # Build outside the lock: plan construction evaluates
        # coefficients and allocates nothing shared, so a rare duplicate
        # build is cheaper than serializing every miss.
        built = ExecutionPlan(algorithm, key)
        evicted: list[PlanKey] = []
        missed = False
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self.misses += 1
                missed = True
                self._plans[key] = plan = built
                if self.log is not None:
                    self.log.emit("plan-miss", f"plan:{key.algorithm}",
                                  f"built {key.rows_a}x{key.cols_a}x"
                                  f"{key.cols_b} {key.mode} plan")
                while len(self._plans) > self.maxsize:
                    old_key, _ = self._plans.popitem(last=False)
                    self.evictions += 1
                    evicted.append(old_key)
                    if self.log is not None:
                        self.log.emit("plan-evict",
                                      f"plan:{old_key.algorithm}",
                                      f"evicted {old_key.rows_a}x"
                                      f"{old_key.cols_a}x{old_key.cols_b}")
            else:
                self.hits += 1
                self._plans.move_to_end(key)
        if tracer is not None:
            if not missed:
                tracer.instant("plan-hit", cat="plan",
                               algorithm=key.algorithm,
                               shape=f"{key.rows_a}x{key.cols_a}x"
                                     f"{key.cols_b}", mode=key.mode)
            elif self.log is None:
                # With a log attached, EventLog.emit already forwarded
                # the miss/evict to the tracer — don't double-record.
                tracer.instant("plan-miss", cat="plan",
                               algorithm=key.algorithm,
                               shape=f"{key.rows_a}x{key.cols_a}x"
                                     f"{key.cols_b}", mode=key.mode)
                for old_key in evicted:
                    tracer.instant("plan-evict", cat="plan",
                                   algorithm=old_key.algorithm,
                                   shape=f"{old_key.rows_a}x"
                                         f"{old_key.cols_a}x"
                                         f"{old_key.cols_b}")
        return plan

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "size": len(self._plans),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def clear(self) -> None:
        """Drop every plan (counters are kept — they are lifetime stats)."""
        with self._lock:
            self._plans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)


# ----------------------------------------------------------------------
# the process-wide default cache
# ----------------------------------------------------------------------

_DEFAULT_LOCK = threading.Lock()
_DEFAULT_CACHE: PlanCache | None = None


def default_plan_cache() -> PlanCache:
    """The lazily created process-wide cache the hot paths share."""
    global _DEFAULT_CACHE
    with _DEFAULT_LOCK:
        if _DEFAULT_CACHE is None:
            _DEFAULT_CACHE = PlanCache()
        return _DEFAULT_CACHE


def configure_plan_cache(maxsize: int = 64,
                         log: EventLog | None = None) -> PlanCache:
    """Replace the default cache (sizing knob + event instrumentation)."""
    global _DEFAULT_CACHE
    cache = PlanCache(maxsize=maxsize, log=log)
    with _DEFAULT_LOCK:
        _DEFAULT_CACHE = cache
    return cache


def resolve_plan_cache(plan_cache) -> PlanCache | None:
    """Normalize the ``plan_cache`` argument the hot paths accept.

    ``None`` means the process default, ``False`` disables the plan
    engine (pure interpreter, the pre-plan behavior), and a
    :class:`PlanCache` instance is used as-is.
    """
    if plan_cache is None:
        return default_plan_cache()
    if plan_cache is False:
        return None
    if isinstance(plan_cache, PlanCache):
        return plan_cache
    raise TypeError(
        f"plan_cache must be None, False, or a PlanCache, "
        f"got {type(plan_cache).__name__}")
