"""Choosing the APA parameter ``lambda`` (paper §2.3).

The numerical error of an APA algorithm has two opposing contributions:

- the *approximation* error, ``O(lambda**sigma)`` — shrinks as ``lambda``
  shrinks;
- the *roundoff* error, ``O(2**-d * lambda**-(s*phi))`` — grows as
  ``lambda`` shrinks, because coefficients carry negative powers up to
  ``phi`` per recursive step.

Balancing the two (Bini, Lotti & Romani 1980) gives the optimum
``lambda* = Theta(2**(-d / (sigma + s*phi)))`` and minimum error
``O(2**(-d*sigma / (sigma + s*phi)))``.  The paper picks the best of the
five powers of two nearest the theory optimum empirically; we implement
both the closed form and that tuner.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import numpy.typing as npt

from repro.algorithms.spec import AlgorithmLike

__all__ = ["precision_bits", "optimal_lambda", "lambda_candidates", "tune_lambda"]


def precision_bits(dtype: npt.DTypeLike) -> int:
    """Fractional bits ``d`` of the significand for a float dtype.

    23 for float32, 52 for float64 (the ``2**-d`` working precisions the
    paper uses).
    """
    dt = np.dtype(dtype)
    if dt == np.float32:
        return 23
    if dt == np.float64:
        return 52
    if dt == np.float16:
        return 10
    raise ValueError(f"unsupported floating dtype {dt}")


def optimal_lambda(algorithm: AlgorithmLike, d: int = 23,
                   steps: int = 1) -> float:
    """Theory-optimal ``lambda`` rounded to a power of two.

    Exact algorithms have no lambda dependence; 1.0 is returned so callers
    can pass it through unconditionally.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if d <= 0:
        raise ValueError("precision bits d must be positive")
    if algorithm.is_exact or algorithm.phi == 0:
        return 1.0
    sigma = max(algorithm.sigma, 1)
    exponent = -d / (sigma + steps * algorithm.phi)
    return float(2.0 ** round(exponent))


def lambda_candidates(algorithm: AlgorithmLike, d: int = 23,
                      steps: int = 1, count: int = 5) -> list[float]:
    """The ``count`` powers of two nearest the theory optimum (paper §2.3)."""
    if count < 1:
        raise ValueError("count must be >= 1")
    center = optimal_lambda(algorithm, d=d, steps=steps)
    if center == 1.0:
        return [1.0]
    e0 = round(np.log2(center))
    half = count // 2
    lo = e0 - half
    return [float(2.0**e) for e in range(lo, lo + count)]


def tune_lambda(
    algorithm: AlgorithmLike,
    n: int = 256,
    d: int | None = None,
    steps: int = 1,
    count: int = 5,
    dtype: npt.DTypeLike = np.float32,
    rng: np.random.Generator | None = None,
    matmul: Callable[..., np.ndarray] | None = None,
) -> tuple[float, float]:
    """Empirically pick the best of the nearest powers of two.

    Multiplies uniform random ``n x n`` matrices with each candidate
    ``lambda`` and returns ``(best_lambda, best_relative_error)`` measured
    against the float64 classical product (the paper's Fig-1 protocol).

    ``matmul`` defaults to :func:`repro.core.apa_matmul.apa_matmul` (or the
    surrogate executor for surrogates); injectable for testing.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if d is None:
        d = precision_bits(dtype)
    if matmul is None:
        from repro.core.apa_matmul import apa_matmul as matmul  # lazy: avoid cycle

    A = rng.random((n, n)).astype(dtype)
    B = rng.random((n, n)).astype(dtype)
    C_ref = A.astype(np.float64) @ B.astype(np.float64)
    ref_norm = np.linalg.norm(C_ref)

    best_lam, best_err = 1.0, np.inf
    for lam in lambda_candidates(algorithm, d=d, steps=steps, count=count):
        C_hat = matmul(A, B, algorithm, lam=lam, steps=steps)
        err = float(np.linalg.norm(C_hat.astype(np.float64) - C_ref) / ref_norm)
        if err < best_err:
            best_lam, best_err = lam, err
    return best_lam, best_err
