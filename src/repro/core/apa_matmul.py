"""Generic recursive executor for bilinear (APA and exact) algorithms.

This is the runtime counterpart of the paper's code-generation framework
(§3.2): given an algorithm's numeric coefficient matrices ``(U, V, W)``
evaluated at a concrete ``lambda``, one recursive step computes

    S_i = sum_p U[p, i] * A_p        (linear combinations of A blocks)
    T_i = sum_s V[s, i] * B_s        (linear combinations of B blocks)
    M_i = S_i @ T_i                  (gemm, or recursion)
    C_q = sum_i W[q, i] * M_i        (output combinations)

Implementation follows the "write-once" strategy the paper found most
memory-efficient: each ``S_i``/``T_i`` is materialized exactly once (the
first term initializes the buffer via ``np.multiply(..., out=...)``,
subsequent terms accumulate in place), and output blocks are accumulated
in place into views of the padded result, so no block is written twice
before being complete.  Single-term combinations with coefficient 1 are
passed to gemm as *views* — no copy at all.

Operands of any shape are supported through zero-padding to the next
multiple of the rule dims per recursion level (see
:mod:`repro.linalg.blocking`); the result is cropped back.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.spec import AlgorithmLike
from repro.core.engine import default_engine
from repro.linalg.blocking import BlockPartition, split_blocks
from repro.types import GemmFn

__all__ = ["apa_matmul", "apa_matmul_nonstationary", "linear_combination"]

#: The process-wide engine; bound once — it is never replaced.
_ENGINE = default_engine()


def linear_combination(
    blocks: list[np.ndarray],
    coeffs: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Write-once linear combination ``sum_j coeffs[j] * blocks[j]``.

    Zero coefficients are skipped.  When the combination is a single block
    with coefficient 1 and no ``out`` buffer is supplied, the block itself
    (a view) is returned — callers must treat the result as read-only.
    """
    terms = [(c, blk) for c, blk in zip(coeffs, blocks) if c != 0]
    if not terms:
        if out is None:
            return np.zeros_like(blocks[0])
        out[...] = 0
        return out
    if out is None:
        if len(terms) == 1 and terms[0][0] == 1:
            return terms[0][1]
        out = np.empty_like(blocks[0])
    first_c, first_b = terms[0]
    if first_c == 1:
        np.copyto(out, first_b)
    else:
        np.multiply(first_b, first_c, out=out)
    buf = None
    for c, blk in terms[1:]:
        if c == 1:
            out += blk
        elif c == -1:
            out -= blk
        else:
            # out += c * blk without allocating a fresh temporary each term
            if buf is None:
                buf = np.empty_like(out)
            np.multiply(blk, c, out=buf)
            out += buf
    return out


def _flatten_blocks(X: np.ndarray, rows: int, cols: int) -> list[np.ndarray]:
    grid = split_blocks(X, rows, cols)
    return [grid[i][j] for i in range(rows) for j in range(cols)]


def apa_matmul(
    A: np.ndarray,
    B: np.ndarray,
    algorithm: AlgorithmLike | str,
    lam: float | None = None,
    steps: int | None = None,
    gemm: GemmFn | None = None,
    d: int | None = None,
    plan_cache=None,
) -> np.ndarray:
    """Multiply ``A @ B`` with a catalogued algorithm.

    A thin shim over :meth:`repro.core.engine.ExecutionEngine.sequential`
    — the engine owns tracing and dispatch (plan fast path vs per-call
    interpreter), and an active
    :func:`~repro.core.config.execution_context` supplies any parameter
    left unset here.  Results are bit-identical to the pre-engine entry
    point (``tests/test_engine.py`` pins it).

    Parameters
    ----------
    A, B:
        2-D arrays with compatible inner dimension (any float dtype; both
        are used as-is, so pass float32 for the paper's single-precision
        setting).
    algorithm:
        An :class:`~repro.algorithms.spec.AlgorithmLike` or catalog name.
        Surrogates are dispatched to
        :func:`repro.core.surrogate.surrogate_matmul`.
    lam:
        APA parameter; defaults to the theory optimum for the operand
        dtype (``optimal_lambda``).  Ignored by exact algorithms.
    steps:
        Recursive levels of the rule (default 1); every level multiplies
        the flop saving and adds ``phi`` to the roundoff exponent.
    gemm:
        Base-case multiply, defaulting to ``np.matmul``.  Injecting a
        custom callable is how the fault injectors and the parallel
        executor hook the sub-products.
    d:
        Precision bits used for the default ``lam``; inferred from the
        operand dtype when omitted.
    plan_cache:
        ``None`` (default) routes eligible calls through the process-wide
        :class:`~repro.core.plan.PlanCache` — repeated identical
        ``(algorithm, shape, dtype, lam, steps)`` calls then reuse one
        precomputed :class:`~repro.core.plan.ExecutionPlan` and its
        pooled workspace arena.  Pass a :class:`PlanCache` to use a
        private cache, or ``False`` to force the per-call interpreter
        (the pre-plan behavior).  Both paths are bit-identical.

    Returns
    -------
    The ``(A.shape[0], B.shape[1])`` product array, same dtype as the
    promoted operand dtype.
    """
    return _ENGINE.sequential(A, B, algorithm, lam, steps, gemm, d,
                              plan_cache)


def _apa_matmul_impl(
    A: np.ndarray,
    B: np.ndarray,
    algorithm: AlgorithmLike | str,
    lam: float | None,
    steps: int,
    gemm: GemmFn | None,
    d: int | None,
    plan_cache,
) -> np.ndarray:
    if A.ndim != 2 or B.ndim != 2:
        raise ValueError("apa_matmul expects 2-D operands")
    if A.shape[1] != B.shape[0]:
        raise ValueError(f"inner dims mismatch: {A.shape} @ {B.shape}")
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if lam is not None and (not np.isfinite(lam) or lam <= 0):
        raise ValueError(f"lam must be finite and > 0, got {lam!r}")

    if algorithm.is_surrogate:
        from repro.core.surrogate import surrogate_matmul

        return surrogate_matmul(A, B, algorithm, lam=lam, steps=steps, d=d)

    from repro.core.lam import optimal_lambda, precision_bits

    if lam is None:
        if d is None:
            dtype = np.result_type(A.dtype, B.dtype)
            d = precision_bits(dtype) if dtype.kind == "f" else 52
        lam = optimal_lambda(algorithm, d=d, steps=steps)

    # Plan fast path: same arithmetic, but partition/coefficients/buffers
    # come from a cached ExecutionPlan instead of being rebuilt per call.
    # Restricted to matching float operands so the combination dtypes are
    # exactly the interpreter's; everything else falls through below.
    from repro.core.plan import resolve_plan_cache

    cache = resolve_plan_cache(plan_cache)
    if cache is not None and A.dtype == B.dtype and A.dtype.kind == "f":
        plan = cache.plan_for(
            algorithm, A.shape[0], A.shape[1], B.shape[1],
            A.dtype, lam, steps=steps,
        )
        return plan.execute(A, B, gemm=gemm)

    if gemm is None:
        gemm = np.matmul

    m, n, k = algorithm.m, algorithm.n, algorithm.k
    plan = BlockPartition(
        m, n, k, rows_a=A.shape[0], cols_a=A.shape[1], cols_b=B.shape[1], steps=steps
    )
    Ap, Bp = plan.prepare(A, B)

    dtype = np.result_type(Ap.dtype, Bp.dtype)
    Un, Vn, Wn = algorithm.evaluate(lam, dtype=dtype)
    r = algorithm.rank

    def recurse(Ab: np.ndarray, Bb: np.ndarray, level: int) -> np.ndarray:
        if level == 0:
            return gemm(Ab, Bb)
        a_blocks = _flatten_blocks(Ab, m, n)
        b_blocks = _flatten_blocks(Bb, n, k)
        C = np.zeros((Ab.shape[0] // m * m, Bb.shape[1] // k * k), dtype=dtype)
        c_blocks = _flatten_blocks(C, m, k)
        initialized = [False] * len(c_blocks)
        buf = None
        for i in range(r):
            S = linear_combination(a_blocks, Un[:, i])
            T = linear_combination(b_blocks, Vn[:, i])
            M = recurse(S, T, level - 1)
            for q in range(len(c_blocks)):
                w = Wn[q, i]
                if w == 0:
                    continue
                target = c_blocks[q]
                if not initialized[q]:
                    if w == 1:
                        np.copyto(target, M)
                    else:
                        np.multiply(M, w, out=target)
                    initialized[q] = True
                elif w == 1:
                    target += M
                elif w == -1:
                    target -= M
                else:
                    if buf is None:
                        buf = np.empty_like(target)
                    np.multiply(M, w, out=buf)
                    target += buf
        return C

    C_padded = recurse(Ap, Bp, steps)
    return np.ascontiguousarray(plan.crop(C_padded))


def apa_matmul_nonstationary(
    A: np.ndarray,
    B: np.ndarray,
    algorithms: list[AlgorithmLike | str],
    lam: float | None = None,
    gemm: GemmFn | None = None,
    d: int | None = None,
    plan_cache=None,
    threads: int | None = None,
    strategy: str | None = None,
    guarded: bool | None = None,
) -> np.ndarray:
    """Uniform non-stationary recursion (paper §6): one algorithm per level.

    ``algorithms[0]`` is applied at the outermost level, ``algorithms[1]``
    to its sub-products, and so on; the innermost products call gemm.
    Useful for matching different aspect ratios across levels or pairing a
    low-phi rule outside with a high-speedup rule inside.

    ``lam`` applies to every APA level (pass ``None`` for the theory
    optimum computed from the *combined* phi, which is the sum over
    levels as each level multiplies intermediate magnitudes).

    A shim over :meth:`repro.core.engine.ExecutionEngine.nonstationary`,
    which closed this entry point's historical feature gaps: every level
    now resolves ``plan_cache`` consistently (``None`` process default /
    ``False`` interpreter / private :class:`~repro.core.plan.PlanCache`),
    ``threads > 1`` runs the *outer* level on the §3.2 threaded executor
    (``strategy`` selects its schedule), and ``guarded=True`` wraps the
    whole recursion in the
    :class:`~repro.robustness.guard.GuardedBackend` health checks.
    """
    return _ENGINE.nonstationary(
        A, B, algorithms, lam=lam, gemm=gemm, d=d, plan_cache=plan_cache,
        threads=threads, strategy=strategy, guarded=guarded)
