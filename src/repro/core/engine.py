"""The execution engine: one dispatch point for every matmul path.

PRs 1–4 grew four divergent entry points to the paper's pipeline —
:func:`repro.core.apa_matmul.apa_matmul` (interpreter + plan fast
path), :func:`repro.parallel.executor.threaded_apa_matmul` (§3.2
schedules), cached :class:`~repro.core.plan.ExecutionPlan` objects,
and compiled kernels (:func:`repro.codegen.cache.compile_algorithm`) —
plus three wrapper backends, each hand-threading its own kwargs.  This
module collapses them behind one :class:`ExecutionEngine` that
resolves an :class:`~repro.core.config.ExecutionConfig` into a layered
stack::

    inject   wrap gemm in a seeded GemmFaultInjector   (config.fault)
      ↓
    guard    GuardedBackend health checks + escalation (config.guarded)
      ↓
    trace    one "apa_matmul" span when a tracer is on (obs layer)
      ↓
    dispatch → plan | kernel | threaded | process | shard | interpreter
               | batched | non-stationary | surrogate | classical gemm
               (``tuned=True`` first fills unset algorithm/steps/executor
               from the learned dispatch table — :mod:`repro.tune`)

The legacy entry points are now thin shims over this engine; the
private implementations (``_apa_matmul_impl``, ``_threaded_matmul_impl``,
``_batched_matmul_impl``) may only be called from this module — the
staticcheck rule ENG001 machine-enforces that, so new execution modes
plug in here once instead of into every caller.

Dispatch overhead matters: the shims sit on the hot path the plan
cache optimized, so the no-context fast lanes below add only a global
read and a function call before reaching the pre-refactor bodies
(``bench/hotpath.py`` gates the paired-median overhead at < 2%, like
the observability gate).
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Callable

import numpy as np

from repro.core.config import ExecutionConfig, active_overrides
from repro.obs import tracer as _obs_tracer
from repro.types import GemmFn

__all__ = ["EngineBackend", "ExecutionEngine", "default_engine"]

_CFG_FIELDS: tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(ExecutionConfig))

# ---------------------------------------------------------------------
# Lazily bound private implementations.  engine.py deliberately does
# not import the impl modules at module scope (they import *this*
# module to reach the default engine); the first dispatch binds them
# once under a lock.
# ---------------------------------------------------------------------

_IMPL_LOCK = threading.Lock()
_seq_impl: Callable[..., np.ndarray] | None = None
_threaded_impl: Callable[..., np.ndarray] | None = None
_batched_impl: Callable[..., np.ndarray] | None = None
_process_impl: Callable[..., np.ndarray] | None = None
_shard_impl: Callable[..., np.ndarray] | None = None


def _load_impls() -> None:
    global _seq_impl, _threaded_impl, _batched_impl
    global _process_impl, _shard_impl
    with _IMPL_LOCK:
        if _seq_impl is not None:
            return
        from repro.core.apa_matmul import _apa_matmul_impl
        from repro.core.batched import _batched_matmul_impl
        from repro.parallel.executor import _threaded_matmul_impl
        from repro.parallel.procpool import _process_matmul_impl
        from repro.shard.sharded import _shard_matmul_impl

        _batched_impl = _batched_matmul_impl
        _threaded_impl = _threaded_matmul_impl
        _process_impl = _process_matmul_impl
        _shard_impl = _shard_matmul_impl
        # Bound last: its non-None-ness is the "all loaded" flag read
        # without the lock by the fast lanes.
        _seq_impl = _apa_matmul_impl


def _resolve_algorithm(algorithm: Any) -> Any:
    """Catalog name → ``BilinearAlgorithm``; anything else passes through.

    The str check stays inline (this sits on the fast lanes; non-string
    algorithms must not pay an import), but name lookup delegates to the
    shared resolver so the engine and ``make_backend`` can never drift.
    """
    if isinstance(algorithm, str):
        from repro.backends.resolve import resolve_algorithm

        return resolve_algorithm(algorithm)
    return algorithm


def _run_sequential(
    A: np.ndarray,
    B: np.ndarray,
    algorithm: Any,
    lam: float | None,
    steps: int,
    gemm: GemmFn | None,
    d: int | None,
    plan_cache: Any,
) -> np.ndarray:
    """Trace layer + sequential dispatch (plan fast path or interpreter).

    This is the pre-refactor body of ``apa_matmul``: when a tracer is
    active the whole call becomes one span (the plan's execute span
    nests inside); when it is not, this branch is the entire cost.
    """
    impl = _seq_impl
    if impl is None:
        _load_impls()
        impl = _seq_impl
        assert impl is not None
    tracer = _obs_tracer.ACTIVE
    if tracer is None:
        return impl(A, B, algorithm, lam, steps, gemm, d, plan_cache)
    with tracer.span(
        "apa_matmul", cat="core",
        algorithm=getattr(algorithm, "name", str(algorithm)),
        shape=f"{tuple(A.shape)}@{tuple(B.shape)}", steps=steps,
    ):
        return impl(A, B, algorithm, lam, steps, gemm, d, plan_cache)


def _require_plan_eligible(A: np.ndarray, B: np.ndarray, alg: Any) -> None:
    """``mode='plan'`` forces the cached path; reject what it can't run."""
    if getattr(alg, "is_surrogate", False):
        raise ValueError(
            "mode='plan' cannot execute surrogate algorithms (no "
            "coefficients to plan)")
    if A.dtype != B.dtype or A.dtype.kind != "f":
        raise ValueError(
            "mode='plan' requires matching float operand dtypes "
            f"(got {A.dtype} @ {B.dtype}); use mode='auto' to fall "
            "through to the interpreter")


class EngineBackend:
    """A :class:`~repro.core.backend.MatmulBackend` over one resolved config.

    Built by :meth:`ExecutionEngine.backend`.  The escalation knobs the
    guard layer writes back on recovery (``lam``, ``steps``, ``gemm``,
    ``algorithm``) are plain attributes; call-time changes are folded
    into the config before dispatch.  Fields left unset in the config
    still inherit from any :func:`~repro.core.config.execution_context`
    active at *call* time (backend fields beat the context, per the
    precedence rule); ``guarded`` is the exception — a backend built
    unguarded stays unguarded, wrap it explicitly instead.
    """

    def __init__(self, engine: "ExecutionEngine",
                 config: ExecutionConfig) -> None:
        # Strip every stack-owned knob: this is the stack's *terminal*
        # backend, so guard/randomized/trace are applied above it and
        # must not be re-applied inside.
        cfg = config.replace(guarded=None, guard_policy=None,
                             randomized=None, rand_seed=None, stages=None)
        alg = cfg.algorithm
        if isinstance(alg, (tuple, list)):
            alg = tuple(_resolve_algorithm(a) for a in alg)
        else:
            alg = _resolve_algorithm(alg)
        cfg = cfg.replace(algorithm=alg)
        if cfg.fault is not None:
            # Materialize the injector once via the inject stage's gemm
            # seam: persistent across calls (its call counter advances
            # like a FaultyBackend's), and visible to the guard's
            # recompute via the gemm attribute.
            from repro.backends.stages import InjectStage

            cfg = cfg.replace(
                fault=None,
                gemm=InjectStage(config).wrap_gemm(cfg.gemm))
        self._engine = engine
        self._cfg = cfg
        #: The resolved algorithm — a tuple for non-stationary configs
        #: (the guard maps tuples to its classical-only escalation and
        #: aggregates their combined error bound).
        self.algorithm = alg
        self.lam = cfg.lam
        self.steps = 1 if cfg.steps is None else cfg.steps
        self.gemm = cfg.gemm
        self.plan_cache = cfg.plan_cache
        if isinstance(alg, tuple):
            self.name = "apa:" + "+".join(a.name for a in alg)
        elif alg is None:
            self.name = "classical"
        else:
            self.name = f"apa:{alg.name}"
        self.calls = 0

    @property
    def config(self) -> ExecutionConfig:
        """The resolved (construction-time) config of this backend."""
        return self._cfg

    def matmul(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        self.calls += 1
        base = self._cfg
        cfg = base
        if active_overrides() is not None:
            cfg = self._engine.resolve(base).replace(
                guarded=None, guard_policy=None,
                randomized=None, rand_seed=None, stages=None)
        changes: dict[str, Any] = {}
        if self.lam is not None and self.lam != base.lam:
            changes["lam"] = self.lam
        if self.steps != (1 if base.steps is None else base.steps):
            changes["steps"] = self.steps
        if self.gemm is not base.gemm:
            changes["gemm"] = self.gemm
        if (not isinstance(base.algorithm, tuple)
                and self.algorithm is not base.algorithm):
            changes["algorithm"] = self.algorithm
        if changes:
            cfg = cfg.replace(**changes)
        return self._engine._execute(A, B, cfg)


def _guard_key(cfg: ExecutionConfig) -> tuple[Any, ...]:
    """Hashable identity key for one config's backend-stack instance.

    ``BilinearAlgorithm`` is a dataclass over coefficient arrays, so
    dataclass equality on configs would compare arrays (ambiguous
    truth value); non-scalar fields are keyed by ``id`` instead — the
    cached guard keeps them alive, so ids stay stable.
    """
    parts: list[Any] = []
    for name in _CFG_FIELDS:
        v = getattr(cfg, name)
        if v is None or isinstance(v, (bool, int, float, str)):
            parts.append(v)
        elif isinstance(v, (tuple, list)):
            parts.append(tuple(
                x if isinstance(x, str) else id(x) for x in v))
        else:
            parts.append(id(v))
    return tuple(parts)


#: Backend stacks cached per config (circuit-breaker, escalation, and
#: randomized-draw state must persist across calls with the same
#: config).  Bounded so per-call closures in a config (e.g. lambda
#: gemms) cannot grow the cache without limit; eviction drops that
#: config's breaker history and draw counter.
_STACK_CACHE_MAX = 32


class ExecutionEngine:
    """Resolve configs into the layered stack and run them.

    One process-wide instance (:func:`default_engine`) serves every
    legacy shim; construct private engines to pin a base config::

        engine = ExecutionEngine(ExecutionConfig(threads=4, guarded=True))

    Precedence when resolving a call (highest wins): explicit kwarg >
    backend/engine field > active :func:`execution_context` > defaults.
    """

    def __init__(self, config: ExecutionConfig | None = None) -> None:
        self.config = config if config is not None else ExecutionConfig()
        self._overrides = self.config.overrides()
        self._configured = bool(self._overrides)
        self._stack_lock = threading.Lock()
        self._stacks: dict[tuple[Any, ...], Any] = {}
        self._arenas = threading.local()

    # -- config resolution ---------------------------------------------

    def resolve(self, config: ExecutionConfig | None = None, /,
                **overrides: Any) -> ExecutionConfig:
        """Merge all layers into one validated config (highest wins last)."""
        cfg = ExecutionConfig()
        ctx = active_overrides()
        if ctx is not None:
            cfg = cfg.merged(ctx)
        if self._configured:
            cfg = cfg.merged(self._overrides)
        if config is not None:
            cfg = cfg.merged(config.overrides())
        if overrides:
            cfg = cfg.merged(overrides)
        return cfg

    # -- public API ----------------------------------------------------

    def matmul(self, A: np.ndarray, B: np.ndarray, algorithm: Any = None,
               *, config: ExecutionConfig | None = None, report: Any = None,
               **overrides: Any) -> np.ndarray:
        """Resolve and run one product through the full layer stack.

        ``algorithm`` / keyword overrides are the explicit layer;
        ``config`` sits between them and the engine's own config.
        ``report`` captures an
        :class:`~repro.parallel.executor.ExecutionReport` on the
        threaded path (and forces it, like the legacy entry point).
        """
        if algorithm is not None:
            overrides.setdefault("algorithm", algorithm)
        cfg = self.resolve(config, **overrides)
        return self._run(A, B, cfg, report)

    def backend(self, config: ExecutionConfig | None = None, /,
                **overrides: Any) -> Any:
        """A reusable :class:`MatmulBackend` for the resolved config.

        Staged configs (``guarded`` / ``randomized`` / ``stages``)
        return the engine's cached stack — escalation, breaker, and
        randomized-draw state persist across calls.  Guarded stacks
        hand back the :class:`~repro.backends.guard.GuardedBackend`
        itself (the guard is outermost, so its ``matmul`` *is* the
        composed stack) to keep the familiar
        ``violations``/``fallback_calls`` surface; everything else gets
        the :class:`~repro.backends.stack.BackendStack`, or a fresh
        :class:`EngineBackend` when no stage is active.
        """
        cfg = self.resolve(config, **overrides)
        if cfg.guarded or cfg.randomized or cfg.stages:
            stack = self._stack_for(cfg)
            guard = stack.guard
            return guard if guard is not None else stack
        return EngineBackend(self, cfg)

    def execute(self, A: np.ndarray, B: np.ndarray,
                config: ExecutionConfig) -> np.ndarray:
        """Run one *already-resolved* config, no re-layering.

        The serving layer's submission hook (:mod:`repro.serve`): a
        request's QoS class is resolved into an :class:`ExecutionConfig`
        once at admission time, and every subsequent retry, coalesced
        batch, or degradation rung of that request must execute exactly
        what was admitted — even if an :func:`~repro.core.config.
        execution_context` is entered elsewhere in the process while the
        request is in flight.  ``config`` therefore enters the stack
        below :meth:`resolve` (guard → inject → dispatch), unlike
        :meth:`matmul` which re-merges all layers per call.
        """
        return self._run(A, B, config)

    def plan_stats(self) -> dict[str, Any]:
        """Plan-cache + pool statistics for this engine's execution state.

        Mirrors ``Trainer.plan_stats()``: the resolved cache of the
        engine config (the process default when unset) plus any caches
        held by cached guarded backends, deduplicated by identity.
        """
        from repro.core.plan import resolve_plan_cache
        from repro.parallel.pool import pool_stats
        from repro.parallel.procpool import process_pool_stats
        from repro.parallel.shm import shm_stats

        caches: list[dict[str, Any]] = []
        seen: set[int] = set()

        def add(candidate: Any) -> None:
            cache = resolve_plan_cache(candidate)
            if cache is not None and id(cache) not in seen:
                seen.add(id(cache))
                caches.append(cache.stats())

        add(self.config.plan_cache)
        with self._stack_lock:
            stacks = list(self._stacks.values())
        for stack in stacks:
            target = getattr(stack, "target", stack)
            add(getattr(target, "plan_cache", None))
        return {"plan_caches": caches, "pool": pool_stats(),
                "process_pool": process_pool_stats(), "shm": shm_stats()}

    # -- fast lanes for the legacy shims -------------------------------
    #
    # Each legacy entry point has a fixed capability set, so when no
    # execution_context is active and this engine carries no config,
    # dispatch reduces to one global read before the pre-refactor body.

    def sequential(self, A: np.ndarray, B: np.ndarray, algorithm: Any,
                   lam: float | None = None, steps: int | None = None,
                   gemm: GemmFn | None = None, d: int | None = None,
                   plan_cache: Any = None) -> np.ndarray:
        """``apa_matmul`` entry: sequential plan/interpreter dispatch."""
        if active_overrides() is None and not self._configured:
            return _run_sequential(
                A, B, _resolve_algorithm(algorithm), lam,
                1 if steps is None else steps, gemm, d, plan_cache)
        return self.matmul(A, B, algorithm, lam=lam, steps=steps,
                           gemm=gemm, d=d, plan_cache=plan_cache)

    def threaded(self, A: np.ndarray, B: np.ndarray, algorithm: Any,
                 threads: int, lam: float | None = None,
                 strategy: str | None = None, schedule: Any = None,
                 gemm: GemmFn | None = None, steps: int | None = None,
                 retries: int | None = None, timeout: float | None = None,
                 check_finite: bool | None = None, report: Any = None,
                 plan_cache: Any = None) -> np.ndarray:
        """``threaded_apa_matmul`` entry: §3.2 schedule execution."""
        if active_overrides() is None and not self._configured:
            impl = _threaded_impl
            if impl is None:
                _load_impls()
                impl = _threaded_impl
                assert impl is not None
            return impl(
                A, B, _resolve_algorithm(algorithm), threads, lam=lam,
                strategy="hybrid" if strategy is None else strategy,
                schedule=schedule, gemm=gemm,
                steps=1 if steps is None else steps,
                retries=0 if retries is None else retries, timeout=timeout,
                check_finite=bool(check_finite), report=report,
                plan_cache=plan_cache)
        return self.matmul(
            A, B, algorithm, report=report, mode="threaded",
            threads=threads, lam=lam, strategy=strategy, schedule=schedule,
            gemm=gemm, steps=steps, retries=retries, timeout=timeout,
            check_finite=check_finite, plan_cache=plan_cache)

    def batched(self, A: np.ndarray, B: np.ndarray, algorithm: Any,
                lam: float | None = None, batch_mode: str | None = None,
                d: int | None = None, plan_cache: Any = None) -> np.ndarray:
        """``apa_matmul_batched`` entry: stacked/loop 3-D execution."""
        if active_overrides() is None and not self._configured:
            impl = _batched_impl
            if impl is None:
                _load_impls()
                impl = _batched_impl
                assert impl is not None
            return impl(A, B, _resolve_algorithm(algorithm), lam,
                        "stacked" if batch_mode is None else batch_mode,
                        d, plan_cache)
        cfg = self.resolve(None, algorithm=algorithm, lam=lam,
                           batch_mode=batch_mode, d=d, plan_cache=plan_cache)
        return self._run(A, B, cfg)

    def nonstationary(self, A: np.ndarray, B: np.ndarray, algorithms: Any,
                      lam: float | None = None, gemm: GemmFn | None = None,
                      d: int | None = None, plan_cache: Any = None,
                      threads: int | None = None,
                      strategy: str | None = None,
                      guarded: bool | None = None) -> np.ndarray:
        """``apa_matmul_nonstationary`` entry: one algorithm per level."""
        cfg = self.resolve(
            None, algorithm=tuple(algorithms), lam=lam, gemm=gemm, d=d,
            plan_cache=plan_cache, threads=threads, strategy=strategy,
            guarded=guarded)
        return self._run(A, B, cfg)

    # -- the layer stack -----------------------------------------------

    def _run(self, A: np.ndarray, B: np.ndarray, cfg: ExecutionConfig,
             report: Any = None) -> np.ndarray:
        """Stack layer: route staged configs through their cached stack."""
        if cfg.guarded or cfg.randomized or cfg.stages:
            if report is not None:
                if cfg.guarded:
                    raise ValueError(
                        "report capture is not supported through the "
                        "guarded path; guard events land in the backend's "
                        "EventLog")
                raise ValueError(
                    "report capture is not supported through the staged "
                    "path; drop stages/randomized or capture spans via "
                    "the tracer")
            if cfg.guarded or cfg.randomized or "randomized" in (
                    cfg.stages or ()):
                if getattr(A, "ndim", 2) != 2 or getattr(B, "ndim", 2) != 2:
                    if cfg.guarded:
                        raise ValueError(
                            "guarded execution supports 2-D products only")
                    raise ValueError(
                        "randomized execution supports 2-D products only")
            stack = self._stack_for(cfg)
            return stack.matmul(A, B)  # type: ignore[no-any-return]
        return self._execute(A, B, cfg, report)

    def _execute(self, A: np.ndarray, B: np.ndarray, cfg: ExecutionConfig,
                 report: Any = None) -> np.ndarray:
        """Inject layer: resolve the algorithm, wrap gemm in the fault spec."""
        if (cfg.tuned and cfg.algorithm is None and cfg.shard is None
                and getattr(A, "ndim", 2) == 2
                and getattr(B, "ndim", 2) == 2):
            # Learned dispatch: fill still-unset fields from the
            # installed table.  Sits here — after every explicit layer
            # merged, before dispatch — so kwargs/engine/context beat
            # the table and the table beats the built-in defaults;
            # uncovered cells leave cfg untouched (classical fallback).
            from repro.tune.dispatch import consult

            cfg = consult(A, B, cfg)
        alg = cfg.algorithm
        if isinstance(alg, (tuple, list)):
            alg = tuple(_resolve_algorithm(a) for a in alg)
        else:
            alg = _resolve_algorithm(alg)
        gemm = cfg.gemm
        if cfg.fault is not None:
            # The inject stage acts on the gemm seam: a fresh injector
            # per call, exactly like the pre-stack code built inline.
            from repro.backends.stages import InjectStage

            gemm = InjectStage(cfg).wrap_gemm(gemm)
        return self._dispatch(A, B, cfg, alg, gemm, report)

    def _dispatch(self, A: np.ndarray, B: np.ndarray, cfg: ExecutionConfig,
                  alg: Any, gemm: GemmFn | None,
                  report: Any = None) -> np.ndarray:
        """The single dispatch point — every execution path branches here."""
        if getattr(A, "ndim", 2) == 3 or getattr(B, "ndim", 2) == 3:
            return self._dispatch_batched(A, B, cfg, alg)
        if cfg.shard is not None:
            impl = _shard_impl
            if impl is None:
                _load_impls()
                impl = _shard_impl
                assert impl is not None
            return impl(A, B, alg, cfg, self, gemm, report)
        if (cfg.min_dim and A.ndim == 2 and B.ndim == 2
                and A.shape[1] == B.shape[0]
                and min(A.shape[0], A.shape[1], B.shape[1]) < cfg.min_dim):
            return A @ B
        if isinstance(alg, tuple):
            return self._run_nonstationary(A, B, alg, cfg, gemm)
        if alg is None:
            return self._run_classical(A, B, cfg, gemm)
        mode = cfg.mode or "auto"
        if mode == "kernel":
            return self._run_kernel(A, B, alg, cfg, gemm)
        threads = 1 if cfg.threads is None else cfg.threads
        steps = 1 if cfg.steps is None else cfg.steps
        if (cfg.executor or "thread") == "process":
            # Config validation already rejects gemm/fault *fields* on
            # process configs; this backstop catches a gemm grafted on
            # later (a guard escalation writing backend.gemm).
            if gemm is not None:
                raise ValueError(
                    "executor='process' runs gemms in worker processes; "
                    "the gemm/fault seams are thread-executor only")
            impl = _process_impl
            if impl is None:
                _load_impls()
                impl = _process_impl
                assert impl is not None
            return impl(
                A, B, alg, threads, lam=cfg.lam,
                strategy=cfg.strategy or "hybrid", schedule=cfg.schedule,
                steps=steps, retries=cfg.retries or 0, timeout=cfg.timeout,
                check_finite=bool(cfg.check_finite), report=report,
                plan_cache=cfg.plan_cache)
        if mode == "threaded" or (mode == "auto" and (
                threads > 1 or bool(cfg.retries) or cfg.timeout is not None
                or bool(cfg.check_finite) or cfg.schedule is not None
                or report is not None)):
            impl = _threaded_impl
            if impl is None:
                _load_impls()
                impl = _threaded_impl
                assert impl is not None
            return impl(
                A, B, alg, threads, lam=cfg.lam,
                strategy=cfg.strategy or "hybrid", schedule=cfg.schedule,
                gemm=gemm, steps=steps, retries=cfg.retries or 0,
                timeout=cfg.timeout, check_finite=bool(cfg.check_finite),
                report=report, plan_cache=cfg.plan_cache)
        plan_cache = cfg.plan_cache
        if mode == "interpreter":
            plan_cache = False
        elif mode == "plan":
            _require_plan_eligible(A, B, alg)
        return _run_sequential(A, B, alg, cfg.lam, steps, gemm, cfg.d,
                               plan_cache)

    # -- dispatch targets ----------------------------------------------

    def _dispatch_batched(self, A: np.ndarray, B: np.ndarray,
                          cfg: ExecutionConfig, alg: Any) -> np.ndarray:
        if cfg.guarded:
            raise ValueError("guarded execution supports 2-D products only")
        if cfg.fault is not None or cfg.gemm is not None:
            raise ValueError(
                "batched execution has no gemm seam; drop gemm/fault or "
                "loop over 2-D products")
        if isinstance(alg, (tuple, list)):
            raise ValueError(
                "batched execution takes a single algorithm, not a "
                "non-stationary level list")
        if cfg.shard is not None:
            raise ValueError(
                "sharded execution is 2-D only; loop over batch items "
                "to shard each product")
        wants_scheduled = (
            (cfg.threads or 1) > 1 or (cfg.steps or 1) > 1
            or (cfg.executor or "thread") == "process"
            or cfg.mode == "threaded")
        if wants_scheduled and (cfg.batch_mode or "stacked") == "loop":
            # Loop mode has no cross-item arithmetic to fuse, so each
            # item can take the full scheduled path (threads, steps,
            # executor='process') independently; stacked mode stays
            # sequential-only below.
            if A.ndim != 3 or B.ndim != 3:
                raise ValueError(
                    "batched operands must be 3-D (batch, rows, cols)")
            if A.shape[0] != B.shape[0]:
                raise ValueError(
                    f"batch sizes differ: {A.shape[0]} vs {B.shape[0]}")
            if A.shape[0] == 0:
                dtype = np.result_type(A.dtype, B.dtype)
                return np.zeros((0, A.shape[1], B.shape[2]), dtype=dtype)
            item_cfg = cfg.replace(batch_mode=None)
            return np.stack([
                self._dispatch(A[i], B[i], item_cfg, alg, None, None)
                for i in range(A.shape[0])])
        if wants_scheduled or cfg.mode not in (None, "auto"):
            raise ValueError(
                "batched execution supports only the sequential "
                "single-step auto path (mode/threads/steps are 2-D "
                "knobs; batch_mode='loop' additionally accepts the "
                "scheduled knobs per item)")
        impl = _batched_impl
        if impl is None:
            _load_impls()
            impl = _batched_impl
            assert impl is not None
        return impl(A, B, alg, cfg.lam, cfg.batch_mode or "stacked",
                    cfg.d, cfg.plan_cache)

    def _run_classical(self, A: np.ndarray, B: np.ndarray,
                       cfg: ExecutionConfig,
                       gemm: GemmFn | None) -> np.ndarray:
        if (cfg.mode not in (None, "auto") or (cfg.threads or 1) > 1
                or (cfg.steps or 1) > 1):
            raise ValueError(
                "algorithm=None selects classical gemm, which has no "
                "mode/threads/steps knobs")
        if gemm is None:
            return np.matmul(A, B)
        return gemm(A, B)

    def _run_nonstationary(self, A: np.ndarray, B: np.ndarray,
                           algs: tuple[Any, ...], cfg: ExecutionConfig,
                           gemm: GemmFn | None) -> np.ndarray:
        """Paper §6 non-stationary recursion, one algorithm per level.

        Every level now routes back through the engine's sequential
        dispatch, so plan caching applies per level with a consistent
        cache (the historical gap: the legacy entry point could not
        pass one through), and the outer level can run on the threaded
        executor when ``threads > 1``.
        """
        if not algs:
            raise ValueError("need at least one algorithm")
        for alg in algs:
            if alg.is_surrogate:
                raise ValueError(
                    f"{alg.name!r} is a surrogate; non-stationary "
                    "execution requires full coefficients")
        if cfg.mode not in (None, "auto", "threaded"):
            raise ValueError(
                f"mode={cfg.mode!r} does not apply to non-stationary "
                "execution (pass plan_cache=False for the per-call "
                "interpreter)")
        if (cfg.executor or "thread") == "process":
            raise ValueError(
                "non-stationary execution threads a per-level gemm "
                "closure through the schedule; executor='process' "
                "cannot ship closures to workers — use the thread "
                "executor")
        lam = cfg.lam
        if lam is None:
            # The combined-phi optimum: levels multiply intermediate
            # magnitudes, so phi sums across levels (paper §6).
            from repro.core.lam import precision_bits

            dtype = np.result_type(A.dtype, B.dtype)
            d = cfg.d
            if d is None:
                d = precision_bits(dtype) if dtype.kind == "f" else 52
            total_phi = sum(alg.phi for alg in algs)
            sigma = min((alg.sigma for alg in algs if alg.is_apa), default=0)
            if total_phi == 0 or sigma == 0:
                lam = 1.0
            else:
                lam = float(2.0 ** round(-d / (sigma + total_phi)))
        base_gemm: GemmFn = np.matmul if gemm is None else gemm
        threads = 1 if cfg.threads is None else cfg.threads
        n_levels = len(algs)

        def level(Ab: np.ndarray, Bb: np.ndarray, depth: int) -> np.ndarray:
            if depth == n_levels:
                return base_gemm(Ab, Bb)

            def inner(X: np.ndarray, Y: np.ndarray,
                      _d: int = depth + 1) -> np.ndarray:
                return level(X, Y, _d)

            if depth == 0 and threads > 1:
                impl = _threaded_impl
                if impl is None:
                    _load_impls()
                    impl = _threaded_impl
                    assert impl is not None
                return impl(
                    Ab, Bb, algs[0], threads, lam=lam,
                    strategy=cfg.strategy or "hybrid", schedule=cfg.schedule,
                    gemm=inner, steps=1, retries=cfg.retries or 0,
                    timeout=cfg.timeout, check_finite=bool(cfg.check_finite),
                    report=None, plan_cache=cfg.plan_cache)
            return _run_sequential(Ab, Bb, algs[depth], lam, 1, inner,
                                   cfg.d, cfg.plan_cache)

        return level(A, B, 0)

    def _run_kernel(self, A: np.ndarray, B: np.ndarray, alg: Any,
                    cfg: ExecutionConfig,
                    gemm: GemmFn | None) -> np.ndarray:
        """Generated-code path: one compiled recursion step per call."""
        if alg.is_surrogate:
            raise ValueError(
                f"{alg.name!r} is a surrogate; mode='kernel' requires "
                "full coefficients")
        from repro.codegen.cache import KernelArena, compile_algorithm

        fn = compile_algorithm(alg)
        lam = cfg.lam
        if lam is None:
            from repro.core.lam import optimal_lambda, precision_bits

            d = cfg.d
            if d is None:
                dtype = np.result_type(A.dtype, B.dtype)
                d = precision_bits(dtype) if dtype.kind == "f" else 52
            lam = optimal_lambda(alg, d=d, steps=1)
        # One arena per thread: KernelArena is deliberately not
        # thread-safe, and pool workers must not share the engine's.
        arena = getattr(self._arenas, "arena", None)
        if arena is None:
            arena = KernelArena()
            self._arenas.arena = arena
        return fn(A, B, lam=lam, gemm=gemm, arena=arena)  # type: ignore[no-any-return]

    # -- backend-stack instance cache ----------------------------------

    def _stack_for(self, cfg: ExecutionConfig) -> Any:
        """The cached :class:`BackendStack` for one staged config."""
        key = _guard_key(cfg)
        with self._stack_lock:
            stack = self._stacks.get(key)
            if stack is None:
                from repro.backends.stack import BackendStack

                stack = BackendStack.from_config(cfg, engine=self)
                if len(self._stacks) >= _STACK_CACHE_MAX:
                    self._stacks.pop(next(iter(self._stacks)))
                self._stacks[key] = stack
            return stack

    def _guard_for(self, cfg: ExecutionConfig) -> Any:
        """Legacy accessor: the guard of the config's cached stack."""
        guard = self._stack_for(cfg).guard
        if guard is None:
            raise ValueError("config has no guard stage")
        return guard


_DEFAULT_ENGINE = ExecutionEngine()


def default_engine() -> ExecutionEngine:
    """The process-wide engine every legacy entry point delegates to."""
    return _DEFAULT_ENGINE
