"""Execution engine: run APA algorithms on NumPy operands.

- :mod:`repro.core.lam` — theory-optimal and empirically tuned choices of
  the APA parameter ``lambda`` (paper §2.3);
- :mod:`repro.core.apa_matmul` — the generic recursive executor for true
  :class:`~repro.algorithms.spec.BilinearAlgorithm` objects (write-once
  linear combinations + gemm sub-products, paper §3.2);
- :mod:`repro.core.surrogate` — execution of metadata surrogates
  (classical product + structured error at the modelled magnitude);
- :mod:`repro.core.backend` — the pluggable matmul-backend protocol used
  to inject APA products into neural-network layers;
- :mod:`repro.core.plan` — cached :class:`~repro.core.plan.ExecutionPlan`
  objects with pooled workspace arenas (the hot-path engine behind
  repeated identically-shaped calls);
- :mod:`repro.core.config` / :mod:`repro.core.engine` — the
  :class:`~repro.core.config.ExecutionConfig` value object and the
  :class:`~repro.core.engine.ExecutionEngine` that resolves it into the
  layered inject → guard → trace → dispatch stack (every public entry
  point above is a thin shim over it).
"""

from repro.core.apa_matmul import apa_matmul
from repro.core.config import ExecutionConfig, execution_context
from repro.core.engine import ExecutionEngine, default_engine
from repro.core.backend import (
    APABackend,
    ClassicalBackend,
    MatmulBackend,
    make_backend,
)
from repro.core.lam import optimal_lambda, precision_bits, tune_lambda
from repro.core.plan import (
    ExecutionPlan,
    PlanCache,
    configure_plan_cache,
    default_plan_cache,
)
from repro.core.surrogate import surrogate_matmul

__all__ = [
    "apa_matmul",
    "surrogate_matmul",
    "ExecutionConfig",
    "ExecutionEngine",
    "execution_context",
    "default_engine",
    "optimal_lambda",
    "tune_lambda",
    "precision_bits",
    "MatmulBackend",
    "ClassicalBackend",
    "APABackend",
    "make_backend",
    "ExecutionPlan",
    "PlanCache",
    "default_plan_cache",
    "configure_plan_cache",
]
