"""Pluggable matmul backends — the paper's "custom operator" boundary.

The paper swaps TensorFlow's matmul for custom operators: a classical
gemm-backed one (the fair baseline) and one per APA algorithm.  Our neural
network layers take the same seam: anything satisfying
:class:`MatmulBackend` can be injected into a
:class:`~repro.nn.layers.Dense` layer, and it will be used for the
forward product and both backward products.

Backends also count invocations and flops so the timing harness can
attribute training time to individual products.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.core.apa_matmul import apa_matmul, apa_matmul_nonstationary

if TYPE_CHECKING:
    from repro.robustness.policy import EscalationPolicy

__all__ = ["MatmulBackend", "ClassicalBackend", "APABackend", "make_backend"]


@runtime_checkable
class MatmulBackend(Protocol):
    """Anything that multiplies two 2-D arrays."""

    name: str

    def matmul(self, A: np.ndarray, B: np.ndarray) -> np.ndarray: ...


@dataclass
class _CallStats:
    calls: int = 0
    flops: int = 0

    def record(self, A: np.ndarray, B: np.ndarray) -> None:
        self.calls += 1
        self.flops += 2 * A.shape[0] * A.shape[1] * B.shape[1]

    def reset(self) -> None:
        self.calls = 0
        self.flops = 0


@dataclass
class ClassicalBackend:
    """The baseline: a direct call to BLAS gemm via ``np.matmul``.

    Mirrors the paper's "custom classical operator that directly calls
    gemm".
    """

    name: str = "classical"
    stats: _CallStats = field(default_factory=_CallStats)

    def matmul(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        self.stats.record(A, B)
        return A @ B


@dataclass
class APABackend:
    """Backend running one catalogued (APA or exact fast) algorithm.

    Parameters
    ----------
    algorithm:
        An :class:`~repro.algorithms.spec.AlgorithmLike` (real or
        surrogate), or a tuple/list of them for non-stationary execution
        (paper §6: one algorithm per recursion level, dispatched through
        :func:`~repro.core.apa_matmul.apa_matmul_nonstationary`; requires
        ``steps=1`` — the level list *is* the recursion).
    lam:
        APA parameter; ``None`` picks the theory optimum per call from the
        operand dtype.
    steps:
        Recursion depth of the rule.
    min_dim:
        Products whose smallest dimension is below this fall back to plain
        gemm — fast rules only pay off above a size threshold (paper §3.3:
        crossover near dimension 2000 for standalone products; the NN
        experiments use the rule on the large hidden products only).  The
        default 0 never falls back, which is what the paper's NN setup
        does: the *network builder* decides which layers get the APA
        operator.
    gemm:
        Base-case multiply handed to :func:`apa_matmul`; ``None`` uses
        ``np.matmul``.  The fault injectors in
        :mod:`repro.robustness.inject` hook this seam to poison
        individual sub-products.
    plan_cache:
        Forwarded to :func:`apa_matmul`: ``None`` (default) shares the
        process-wide :class:`~repro.core.plan.PlanCache` — a training
        loop's repeated layer shapes then hit warm plans — ``False``
        forces the per-call interpreter, and a ``PlanCache`` instance
        scopes the plans to this backend.
    """

    algorithm: object
    lam: float | None = None
    steps: int = 1
    min_dim: int = 0
    gemm: object = None
    name: str = ""
    stats: _CallStats = field(default_factory=_CallStats)
    fallback_calls: int = 0
    plan_cache: object = None

    def __post_init__(self) -> None:
        if isinstance(self.algorithm, (tuple, list)):
            self.algorithm = tuple(self.algorithm)
            if not self.algorithm:
                raise ValueError("need at least one algorithm")
            if self.steps != 1:
                raise ValueError(
                    "steps does not apply to a non-stationary algorithm "
                    "list — the level list is the recursion")
            if not self.name:
                self.name = "apa:" + "+".join(
                    a.name for a in self.algorithm)
        if not self.name:
            self.name = f"apa:{self.algorithm.name}"
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if self.min_dim < 0:
            raise ValueError("min_dim must be >= 0")
        if self.lam is not None and (
            not np.isfinite(self.lam) or self.lam <= 0
        ):
            raise ValueError(f"lam must be finite and > 0, got {self.lam!r}")

    def matmul(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        self.stats.record(A, B)
        if self.min_dim and min(A.shape[0], A.shape[1], B.shape[1]) < self.min_dim:
            self.fallback_calls += 1
            return A @ B
        return self._stack().matmul(A, B)

    def _stack(self):
        """The (empty) backend stack this class is a shim over.

        An empty :class:`~repro.backends.stack.BackendStack` composes
        no stages, so its ``matmul`` *is* the target's — bit-identical
        to the pre-stack code — while keeping one construction path for
        everything that wraps a matmul.  The target reads this
        backend's live knobs per call, so escalation write-backs
        (``lam``/``steps``) keep working through the stack.
        """
        stack = getattr(self, "_stack_obj", None)
        if stack is None:
            from repro.backends.stack import BackendStack

            stack = BackendStack((), target=_APATarget(self))
            self._stack_obj = stack
        return stack


class _APATarget:
    """Terminal adapter running an :class:`APABackend`'s live knobs."""

    __slots__ = ("_backend",)

    def __init__(self, backend: "APABackend") -> None:
        self._backend = backend

    @property
    def name(self) -> str:
        return self._backend.name

    def matmul(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        b = self._backend
        if isinstance(b.algorithm, tuple):
            return apa_matmul_nonstationary(
                A, B, list(b.algorithm), lam=b.lam, gemm=b.gemm,
                plan_cache=b.plan_cache)
        return apa_matmul(A, B, b.algorithm, lam=b.lam,
                          steps=b.steps, gemm=b.gemm,
                          plan_cache=b.plan_cache)


def make_backend(
    algorithm_name: str | None | list[str] | tuple[str, ...],
    lam: float | None = None,
    steps: int = 1,
    min_dim: int = 0,
    guarded: bool = False,
    policy: EscalationPolicy | None = None,
    plan_cache: object = None,
) -> MatmulBackend:
    """Convenience factory: ``None``/``'classical'`` → gemm, else catalog name.

    The classical name must match exactly — near-misses like
    ``'classical_v2'`` raise ``KeyError`` with the known names instead of
    silently handing back the baseline.  A tuple/list of names builds a
    non-stationary backend (one algorithm per recursion level).
    ``guarded=True`` wraps the result in a
    :class:`~repro.robustness.guard.GuardedBackend` running the
    per-call health checks and escalation ``policy`` (an
    :class:`~repro.robustness.policy.EscalationPolicy`, defaulted).
    """
    from repro.backends.resolve import resolve_backend_algorithm

    resolved = resolve_backend_algorithm(algorithm_name)
    if resolved is None:
        backend: MatmulBackend = ClassicalBackend()
    else:
        backend = APABackend(
            algorithm=resolved,
            lam=lam,
            steps=steps,
            min_dim=min_dim,
            plan_cache=plan_cache,
        )
    if guarded:
        from repro.robustness.guard import GuardedBackend

        return GuardedBackend(backend, policy=policy)  # lint: ignore[ENG002]: legacy shim pinned bit-identical; wraps an APABackend, not an engine config
    return backend
