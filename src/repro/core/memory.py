"""Workspace accounting for fast matmul (memory is the other cost).

Fast algorithms trade flops for temporaries: one recursive step
materializes the ``S_i``/``T_i`` linear combinations and the ``M_i``
products.  This module prices the peak extra workspace of the executor's
write-once strategy so users can predict footprint before running —
padding included — and compare algorithms on memory as well as time.

Model of :func:`repro.core.apa_matmul.apa_matmul` (sequential, per
recursion level):

- padded copies of ``A`` and ``B`` when shapes are ragged;
- per multiplication, at most one ``S`` buffer, one ``T`` buffer and the
  ``M_i`` product live at once (plus a scalar-scratch buffer), since the
  interpreter streams multiplications one at a time;
- the padded output ``C``.

The threaded executor keeps all ``r`` products alive (they are combined
after the pool drains), which :func:`workspace_bytes` reports under
``parallel=True``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.spec import AlgorithmLike
from repro.linalg.blocking import required_padding

__all__ = ["WorkspaceEstimate", "workspace_bytes"]


@dataclass(frozen=True)
class WorkspaceEstimate:
    """Peak extra bytes beyond the inputs and the cropped output."""

    padded_inputs: int
    combination_buffers: int
    product_buffers: int
    padded_output: int

    @property
    def total(self) -> int:
        return (self.padded_inputs + self.combination_buffers
                + self.product_buffers + self.padded_output)

    def overhead_vs_classical(self, M: int, N: int, K: int,
                              dtype_bytes: int = 4) -> float:
        """Extra workspace as a multiple of the classical footprint
        (inputs + output)."""
        classical = (M * N + N * K + M * K) * dtype_bytes
        return self.total / classical


def workspace_bytes(
    algorithm: AlgorithmLike,
    M: int,
    N: int,
    K: int,
    steps: int = 1,
    dtype_bytes: int = 4,
    parallel: bool = False,
) -> WorkspaceEstimate:
    """Peak workspace of one fast multiplication.

    ``parallel=True`` models the threaded executor (all ``r`` products
    held simultaneously); otherwise the streaming interpreter.
    Multi-step recursion adds the geometric tail of per-level buffers
    (dominated by the first level).
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    m, n, k = algorithm.m, algorithm.n, algorithm.k
    r = algorithm.rank

    Mp = required_padding(M, m, steps)
    Np = required_padding(N, n, steps)
    Kp = required_padding(K, k, steps)
    padded_inputs = 0
    if (Mp, Np) != (M, N):
        padded_inputs += Mp * Np * dtype_bytes
    if (Np, Kp) != (N, K):
        padded_inputs += Np * Kp * dtype_bytes

    combo = 0
    products = 0
    bm, bn, bk = Mp, Np, Kp
    for level in range(steps):
        bm, bn, bk = bm // m, bn // n, bk // k
        s_buf = bm * bn * dtype_bytes
        t_buf = bn * bk * dtype_bytes
        p_buf = bm * bk * dtype_bytes
        if level == 0 and parallel:
            # the pool holds every product until output combination
            combo += (s_buf + t_buf)  # one in-flight pair per worker is a
            # lower bound; the dominant term is the r live products:
            products += r * p_buf
        else:
            combo += s_buf + t_buf + p_buf  # streaming: one of each live
            products += p_buf               # plus the scalar scratch buffer

    padded_output = Mp * Kp * dtype_bytes if (Mp, Kp) != (M, K) else 0
    return WorkspaceEstimate(
        padded_inputs=padded_inputs,
        combination_buffers=combo,
        product_buffers=products,
        padded_output=padded_output,
    )
