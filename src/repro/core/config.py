"""Execution configuration: one frozen record of *what* to run.

The engine refactor collapses the repo's four matmul entry points
(``apa_matmul``, ``threaded_apa_matmul``, ``ExecutionPlan``, compiled
kernels) behind a single dispatch point — :mod:`repro.core.engine`.
This module holds the value object those layers share:

- :class:`ExecutionConfig` — a frozen dataclass capturing everything
  that selects an execution: the algorithm (or per-level algorithm
  tuple for non-stationary recursion), ``lam``, ``steps``, precision
  policy ``d``, base-case ``gemm``, threading (``threads`` /
  ``strategy`` / ``schedule``), ``plan_cache``, guard policy, fault
  spec, per-job ``retries`` / ``timeout``, the dispatch ``mode``
  (interpreter vs plan vs kernel vs threaded), the worker ``executor``
  and out-of-core ``shard`` geometry, and the ``tuned`` opt-in to the
  learned dispatch table (:mod:`repro.tune`).
- :func:`execution_context` — a process-wide context manager layering
  config overrides under every call that does not set them explicitly.
- :func:`active_overrides` — the merged override mapping currently in
  effect (``None`` when no context is active; the engine's fast path
  is a single read of this).

Every field defaults to ``None`` meaning **unset** — "inherit from the
next layer down".  Resolution follows the precedence rule (highest
wins)::

    explicit kwarg  >  backend/engine field  >  active context  >  defaults

so a config never has to restate defaults, and two configs merge by
"non-``None`` wins".  Note the corollary: for the few knobs where
``None`` is itself meaningful at run time (``lam=None`` = theory
optimum, ``gemm=None`` = ``np.matmul``, ``plan_cache=None`` = process
default), "leave it at the runtime default" and "unset" coincide —
pass the explicit sentinel (e.g. ``plan_cache=False``) to *pin* a
non-default choice against outer layers.
"""

from __future__ import annotations

import dataclasses
import math
import threading
from collections.abc import Iterator, Mapping
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

from repro.types import GemmFn

__all__ = [
    "BATCH_MODES",
    "EXECUTION_MODES",
    "EXECUTORS",
    "STAGE_NAMES",
    "ExecutionConfig",
    "active_overrides",
    "execution_context",
]

#: Dispatch modes the engine understands.  ``auto`` (the resolved
#: default) picks plan/interpreter/threaded from the other fields;
#: the rest force one path and reject contradictory knobs.
EXECUTION_MODES = ("auto", "interpreter", "plan", "kernel", "threaded")

#: Batched execution modes (``apa_matmul_batched``).
BATCH_MODES = ("stacked", "loop")

#: Schedule executors: worker threads (the default — gemms release the
#: GIL) or worker processes over shared memory (the combinations scale
#: too; see :mod:`repro.parallel.procpool`).
EXECUTORS = ("thread", "process")

#: Backend-stack stage names in canonical composition order (outermost
#: first).  A literal copy of
#: :data:`repro.backends.registry.STAGE_ORDER` — config cannot import
#: the registry (the registry's stages need config-resolved knobs), so
#: the registry asserts the two stay in sync at import time.
STAGE_NAMES = ("guard", "randomized", "trace", "inject")

#: Stage names accepted in ``ExecutionConfig.stages``.  ``inject`` is
#: excluded: fault injection acts on the gemm seam inside the terminal
#: backend and is requested with the ``fault=`` knob — naming it on the
#: product seam as well would double-inject.
SETTABLE_STAGES = ("guard", "randomized", "trace")


def _validate_shard(shard: Any) -> None:
    """Shard geometry: a positive tile edge, a ``(tile_m, tile_n,
    tile_k)`` triple, or any object with those attributes (duck-typed so
    config does not import :mod:`repro.shard`)."""
    if isinstance(shard, bool):
        raise TypeError(f"shard must be a tile size, triple, or "
                        f"ShardSpec, got {shard!r}")
    if isinstance(shard, int):
        if shard < 1:
            raise ValueError(f"shard tile size must be >= 1, got {shard}")
        return
    if isinstance(shard, (tuple, list)):
        if len(shard) != 3 or not all(
                isinstance(t, int) and not isinstance(t, bool) and t >= 1
                for t in shard):
            raise ValueError(
                f"shard triple must be three ints >= 1, got {shard!r}")
        return
    tiles = (getattr(shard, "tile_m", None), getattr(shard, "tile_n", None),
             getattr(shard, "tile_k", None))
    if not all(isinstance(t, int) and t >= 1 for t in tiles):
        raise TypeError(
            f"shard must be a tile size, a (tile_m, tile_n, tile_k) "
            f"triple, or a ShardSpec-like object, got {shard!r}")


@dataclass(frozen=True)
class ExecutionConfig:
    """Everything that selects one matmul execution.

    All fields default to ``None`` = unset; see the module docstring
    for merge semantics.  Validation runs on construction and checks
    only the fields that are set, plus cross-field combinations that
    can never execute (those raise immediately with a clear message
    rather than failing deep inside a backend).
    """

    #: Algorithm: an ``AlgorithmLike``, a catalog name, a *sequence* of
    #: either (non-stationary: one per recursion level), or ``None``
    #: for classical ``gemm`` (still composable with guard/fault/trace).
    algorithm: Any = None
    lam: float | None = None
    steps: int | None = None
    #: Precision bits for the default-``lam`` formula.
    d: int | None = None
    #: Base-case multiply (resolved default ``np.matmul``).
    gemm: GemmFn | None = None
    threads: int | None = None
    #: §3.2 schedule strategy (resolved default ``"hybrid"``).
    strategy: str | None = None
    #: Pre-built :class:`repro.parallel.strategy.Schedule` override.
    schedule: Any = None
    #: ``None`` = process default cache, ``False`` = per-call
    #: interpreter, or a private :class:`repro.core.plan.PlanCache`.
    plan_cache: Any = None
    #: One of :data:`EXECUTION_MODES` (resolved default ``"auto"``).
    mode: str | None = None
    #: One of :data:`BATCH_MODES` for 3-D operands.
    batch_mode: str | None = None
    guarded: bool | None = None
    #: :class:`repro.robustness.guard.GuardPolicy` override.
    guard_policy: Any = None
    #: :class:`repro.robustness.inject.FaultSpec` wrapped around gemm.
    fault: Any = None
    retries: int | None = None
    timeout: float | None = None
    check_finite: bool | None = None
    #: Products with ``min(M, N, K)`` below this fall back to ``A @ B``.
    min_dim: int | None = None
    #: One of :data:`EXECUTORS` (resolved default ``"thread"``):
    #: which worker kind runs the §3.2 schedule.
    executor: str | None = None
    #: Out-of-core tile geometry: an int edge, ``(tile_m, tile_n,
    #: tile_k)``, or a :class:`repro.shard.ShardSpec`.  Setting it
    #: routes 2-D products through the sharded path.
    shard: Any = None
    #: Consult the installed :class:`repro.tune.DispatchTable` for 2-D
    #: products whose ``algorithm``/``executor`` are still unset after
    #: all higher layers merged (precedence: below explicit kwargs and
    #: the active context, above built-in defaults).  Uncovered cells
    #: fall back to the static defaults (classical gemm).
    tuned: bool | None = None
    #: Seeded signed-permutation operand transform before the product
    #: (Malik & Becker, arXiv 1905.07439): debiases APA error, shrinking
    #: its variance at the same lambda.  Composable with ``guarded`` —
    #: the guard is stacked outside, so its residual probe checks the
    #: randomized product.
    randomized: bool | None = None
    #: Seed of the randomized stage's transform stream (resolved
    #: default 0; each call draws fresh from the seeded stream).
    rand_seed: int | None = None
    #: Explicit backend-stack stage names, a subset of
    #: :data:`SETTABLE_STAGES`.  Sugar equivalences: ``"guard"`` ≡
    #: ``guarded=True``, ``"randomized"`` ≡ ``randomized=True``;
    #: ``"trace"`` adds the per-call ``backend-stack`` span on its own.
    #: Order is irrelevant — composition always follows
    #: :data:`STAGE_NAMES`.
    stages: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.tuned is not None and not isinstance(self.tuned, bool):
            raise TypeError(
                f"tuned must be a bool, got {self.tuned!r}")
        if self.lam is not None and (
            not math.isfinite(self.lam) or self.lam <= 0
        ):
            raise ValueError(
                f"lam must be finite and > 0, got {self.lam!r}")
        if self.steps is not None and self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps!r}")
        if self.threads is not None and self.threads < 1:
            raise ValueError(f"threads must be >= 1, got {self.threads!r}")
        if self.retries is not None and self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries!r}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout!r}")
        if self.min_dim is not None and self.min_dim < 0:
            raise ValueError(f"min_dim must be >= 0, got {self.min_dim!r}")
        if self.d is not None and self.d < 1:
            raise ValueError(f"d must be >= 1, got {self.d!r}")
        if self.mode is not None and self.mode not in EXECUTION_MODES:
            raise ValueError(
                f"unknown mode {self.mode!r}; expected one of "
                f"{EXECUTION_MODES}")
        if self.batch_mode is not None and self.batch_mode not in BATCH_MODES:
            raise ValueError(
                f"unknown batch_mode {self.batch_mode!r}; expected one of "
                f"{BATCH_MODES}")
        if self.executor is not None and self.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}; expected one of "
                f"{EXECUTORS}")
        if self.shard is not None:
            _validate_shard(self.shard)
        if self.randomized is not None and not isinstance(
                self.randomized, bool):
            raise TypeError(
                f"randomized must be a bool, got {self.randomized!r}")
        if self.rand_seed is not None and (
                isinstance(self.rand_seed, bool)
                or not isinstance(self.rand_seed, int)):
            raise TypeError(
                f"rand_seed must be an int, got {self.rand_seed!r}")
        if self.stages is not None:
            if isinstance(self.stages, str) or not isinstance(
                    self.stages, (tuple, list)):
                raise TypeError(
                    f"stages must be a tuple of stage names, got "
                    f"{self.stages!r}")
            object.__setattr__(self, "stages", tuple(self.stages))
            unknown = [s for s in self.stages if s not in SETTABLE_STAGES]
            if unknown:
                raise ValueError(
                    f"unknown stage name(s) {unknown!r}; expected a subset "
                    f"of {SETTABLE_STAGES} (fault injection is requested "
                    f"with the fault= knob)")
            if len(set(self.stages)) != len(self.stages):
                raise ValueError(
                    f"duplicate stage names in {self.stages!r}")
        self._check_combinations()

    def _check_combinations(self) -> None:
        """Reject combinations that no backend can execute."""
        mode = self.mode
        if mode == "kernel":
            if self.steps is not None and self.steps > 1:
                raise ValueError(
                    "mode='kernel': generated kernels execute exactly one "
                    "recursion step; drop steps or use mode='auto'")
            if self.threads is not None and self.threads > 1:
                raise ValueError(
                    "mode='kernel' is single-threaded; use mode='threaded' "
                    "with an interpreter path for threads > 1")
        if mode in ("interpreter", "plan", "kernel"):
            for knob, label in (
                (self.schedule, "schedule"),
                (self.retries, "retries"),
                (self.timeout, "timeout"),
                (self.check_finite, "check_finite"),
            ):
                if knob:  # None/0/False all mean "not requested"
                    raise ValueError(
                        f"{label!r} only applies to the threaded executor; "
                        f"it cannot combine with mode={mode!r}")
        if mode == "interpreter":
            if self.threads is not None and self.threads > 1:
                raise ValueError(
                    "mode='interpreter' is the sequential per-call path; "
                    "threads > 1 requires mode='auto' or 'threaded'")
            if self.plan_cache not in (None, False):
                raise ValueError(
                    "mode='interpreter' bypasses plan caching; drop the "
                    "plan_cache or use mode='plan'")
        if mode == "plan":
            if self.plan_cache is False:
                raise ValueError(
                    "mode='plan' requires a plan cache; plan_cache=False "
                    "forces the interpreter")
            if self.threads is not None and self.threads > 1:
                raise ValueError(
                    "mode='plan' is the sequential cached path; threads > 1 "
                    "requires mode='auto' or 'threaded'")
        if self.executor == "process":
            if mode in ("interpreter", "plan", "kernel"):
                raise ValueError(
                    f"executor='process' runs the scheduled executor; it "
                    f"cannot combine with mode={mode!r}")
            if self.gemm is not None or self.fault is not None:
                raise ValueError(
                    "executor='process' runs gemms in worker processes; "
                    "the gemm/fault seams are thread-executor only")
        if self.randomized and self.shard is not None:
            raise ValueError(
                "randomized=True transforms in-memory operands; the "
                "sharded out-of-core path cannot compose with it")
        if self.stages:
            if "guard" in self.stages and self.guarded is False:
                raise ValueError(
                    "stages names 'guard' but guarded=False; drop one "
                    "(they are two spellings of the same stage)")
            if "randomized" in self.stages and self.randomized is False:
                raise ValueError(
                    "stages names 'randomized' but randomized=False; drop "
                    "one (they are two spellings of the same stage)")
            if "randomized" in self.stages and self.shard is not None:
                raise ValueError(
                    "randomized stage transforms in-memory operands; the "
                    "sharded out-of-core path cannot compose with it")

    # -- merge helpers -------------------------------------------------

    def overrides(self) -> dict[str, Any]:
        """The set (non-``None``) fields as a kwargs mapping."""
        out: dict[str, Any] = {}
        for name in _FIELD_NAMES:
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out

    def merged(self, overrides: Mapping[str, Any]) -> "ExecutionConfig":
        """A new config with ``overrides``' non-``None`` entries applied.

        ``overrides`` wins over ``self`` — callers compose layers by
        chaining ``low.merged(high)`` from lowest to highest precedence.
        Unknown keys raise ``TypeError``.
        """
        unknown = set(overrides) - _FIELD_SET
        if unknown:
            raise TypeError(
                f"unknown ExecutionConfig field(s): {sorted(unknown)}")
        merged = self.overrides()
        merged.update(
            {k: v for k, v in overrides.items() if v is not None})
        return ExecutionConfig(**merged)

    def replace(self, **changes: Any) -> "ExecutionConfig":
        """``dataclasses.replace`` shorthand (revalidates)."""
        return dataclasses.replace(self, **changes)


_FIELD_NAMES: tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(ExecutionConfig))
_FIELD_SET = frozenset(_FIELD_NAMES)


# -- process-wide execution context -----------------------------------
#
# A stack of override mappings shared by the whole process (not a
# contextvar: worker threads spawned by the pool must see the same
# layers the submitting thread saw, and the engine's fast path must be
# one global read).  All mutation happens under _CTX_LOCK; _ACTIVE is
# the merged view, rebuilt on entry/exit and None when the stack is
# empty.

_CTX_LOCK = threading.Lock()
_CTX_STACK: list[dict[str, Any]] = []
_ACTIVE: dict[str, Any] | None = None


def active_overrides() -> Mapping[str, Any] | None:
    """Merged overrides of every active :func:`execution_context`.

    ``None`` when no context is active — the engine's dispatch fast
    path reduces to this single read.
    """
    return _ACTIVE


def _rebuild_active() -> None:
    global _ACTIVE
    if not _CTX_STACK:
        _ACTIVE = None
        return
    merged: dict[str, Any] = {}
    for layer in _CTX_STACK:
        merged.update(layer)
    _ACTIVE = merged


@contextmanager
def execution_context(**overrides: Any) -> Iterator[ExecutionConfig]:
    """Layer execution overrides under every call in the ``with`` body.

    Process-wide: calls on *any* thread see the overrides while the
    context is active (the guard/threaded layers hand work to pool
    threads, which must resolve identically).  Contexts nest — inner
    layers win — and explicit kwargs or backend fields always beat the
    context per the precedence rule.

    ``None`` values are dropped (they mean "unset"); unknown field
    names raise ``TypeError``; field values are validated on entry so
    a bad override fails at the ``with`` statement, not at first use.
    Yields the validated :class:`ExecutionConfig` of this layer alone.
    """
    layer = {k: v for k, v in overrides.items() if v is not None}
    unknown = set(layer) - _FIELD_SET
    if unknown:
        raise TypeError(
            f"unknown ExecutionConfig field(s): {sorted(unknown)}")
    cfg = ExecutionConfig(**layer)  # validates values and combinations
    with _CTX_LOCK:
        _CTX_STACK.append(layer)
        _rebuild_active()
    try:
        yield cfg
    finally:
        with _CTX_LOCK:
            # Remove by identity: robust even if contexts exit out of
            # LIFO order (e.g. interleaved threads).
            for i in range(len(_CTX_STACK) - 1, -1, -1):
                if _CTX_STACK[i] is layer:
                    del _CTX_STACK[i]
                    break
            _rebuild_active()
