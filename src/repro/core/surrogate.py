"""Numerical execution of metadata surrogates.

A :class:`~repro.algorithms.smirnov.SurrogateAlgorithm` has no coefficient
matrices, so it cannot run through the generic executor.  What the paper's
experiments need from it numerically is a product with *APA-like error*:

- **bilinear in the inputs** — the true APA error is
  ``lambda * E(A, B) + O(lambda**2)`` where each entry of ``E`` is a
  bilinear form in the entries of ``A`` and ``B`` (e.g. Bini's
  ``E11 = -A12 B11``);
- **relative magnitude** set by the algorithm's ``(sigma, phi)`` class:
  ``~2**(-d*sigma/(sigma+s*phi))`` (paper Table 1), a small constant
  factor below the bound in practice (Fig 1);
- **deterministic** given the same operands (a rerun of an APA product
  gives bitwise-identical error).

We synthesize exactly that: a sign-modulated product
``E = (sr * A) @ (B * sc)`` with fixed per-algorithm ±1 row/column sign
patterns (a bilinear function of ``A`` and ``B`` that is uncorrelated with
``C`` but matched in scale), rescaled to the target relative magnitude.

``emulate_flops=True`` additionally performs the algorithm's true gemm
profile (``r`` products of ``(M/m) x (N/n)`` by ``(N/n) x (K/k)`` blocks)
into a scratch buffer, so wall-clock demos on real multicore hosts exercise
a realistic compute profile; the scratch result is discarded.  Simulated
performance figures do not use this path (they use the cost model), so it
defaults off.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.algorithms.spec import AlgorithmLike
from repro.linalg.blocking import BlockPartition, split_blocks

__all__ = ["surrogate_matmul", "structured_error"]


def _sign_vector(seed_text: str, length: int) -> np.ndarray:
    """Deterministic ±1 pattern derived from a text seed."""
    digest = hashlib.sha256(seed_text.encode()).digest()
    seed = int.from_bytes(digest[:8], "little")
    rng = np.random.default_rng(seed)
    return rng.choice(np.array([-1.0, 1.0]), size=length)


def structured_error(A: np.ndarray, B: np.ndarray, tag: str) -> np.ndarray:
    """A bilinear, deterministic error matrix shaped like ``A @ B``.

    ``E = (sr[:, None] * A) @ (B * sc[None, :])`` with ±1 sign patterns
    seeded by ``tag``.  Bilinear in (A, B) like a true APA error tensor,
    and of comparable Frobenius norm to the product itself for generic
    inputs (callers rescale to the exact target magnitude).
    """
    sr = _sign_vector(tag + ":rows", A.shape[0])
    sc = _sign_vector(tag + ":cols", B.shape[1])
    return (sr[:, None] * A) @ (B * sc[None, :])


def surrogate_matmul(
    A: np.ndarray,
    B: np.ndarray,
    algorithm: AlgorithmLike,
    lam: float | None = None,
    steps: int = 1,
    d: int | None = None,
    inject_error: bool = True,
    emulate_flops: bool = False,
) -> np.ndarray:
    """Multiply ``A @ B`` emulating a surrogate APA algorithm.

    ``lam`` scales the injected error relative to the tuned optimum: at the
    optimal lambda the relative error equals the algorithm's
    ``empirical_error_scale``; a lambda ``t`` times larger multiplies the
    approximation term by ``t**sigma`` (approximation-dominated regime),
    a smaller lambda grows the roundoff term by ``(1/t)**(s*phi)`` — the
    same valley shape a true APA algorithm exhibits.
    """
    if A.ndim != 2 or B.ndim != 2:
        raise ValueError("surrogate_matmul expects 2-D operands")
    if A.shape[1] != B.shape[0]:
        raise ValueError(f"inner dims mismatch: {A.shape} @ {B.shape}")
    if steps < 1:
        raise ValueError("steps must be >= 1")

    from repro.core.lam import precision_bits

    dtype = np.result_type(A.dtype, B.dtype)
    if d is None:
        d = precision_bits(dtype) if dtype.kind == "f" else 52

    if emulate_flops:
        _burn_flop_profile(A, B, algorithm, steps)

    C = A @ B
    if not inject_error:
        return C

    sigma, phi = algorithm.sigma, algorithm.phi
    lam_opt = 2.0 ** (-d / (sigma + steps * phi))
    rel = algorithm.empirical_error_scale(d=d, steps=steps)
    if lam is not None and lam > 0 and lam != lam_opt:
        ratio = lam / lam_opt
        # Error valley: approximation term scales like lam**sigma, roundoff
        # like lam**-(s*phi); total modelled as the max of the two branches.
        rel = rel * max(ratio**sigma, ratio ** (-steps * phi))
        rel = min(rel, 1.0)

    E = structured_error(A, B, algorithm.name)
    e_norm = np.linalg.norm(E)
    c_norm = np.linalg.norm(C)
    if e_norm == 0 or c_norm == 0:
        return C
    scale = rel * c_norm / e_norm
    return (C + scale * E).astype(dtype, copy=False)


def _burn_flop_profile(A: np.ndarray, B: np.ndarray,
                       algorithm: AlgorithmLike, steps: int) -> None:
    """Perform the surrogate's true gemm profile into scratch buffers.

    One recursive level: ``r`` products of ``(M/m, N/n) @ (N/n, K/k)``
    blocks.  Levels beyond the first reuse the same recursion.  Results are
    discarded — only the compute profile matters.
    """
    m, n, k = algorithm.m, algorithm.n, algorithm.k
    plan = BlockPartition(
        m, n, k, rows_a=A.shape[0], cols_a=A.shape[1], cols_b=B.shape[1], steps=steps
    )
    Ap, Bp = plan.prepare(A, B)

    def level(Ab: np.ndarray, Bb: np.ndarray, depth: int) -> None:
        a_grid = split_blocks(Ab, m, n)
        b_grid = split_blocks(Bb, n, k)
        Sa, Tb = a_grid[0][0], b_grid[0][0]
        for _ in range(algorithm.rank):
            if depth > 1:
                level(Sa, Tb, depth - 1)
            else:
                np.matmul(Sa, Tb)

    level(Ap, Bp, steps)
