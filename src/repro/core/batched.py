"""Batched APA products (paper §1: "batches of smaller multiplications").

Convolutional and attention workloads often present *many same-shape
products* rather than one large one.  Two execution modes:

- ``mode='loop'`` — run the fast algorithm per product (right when each
  product is individually above the crossover dimension);
- ``mode='stacked'`` — exploit that every product shares the coefficient
  evaluation: the linear combinations are applied to all batch items at
  once on a 3-D array (one pass of large, bandwidth-friendly elementwise
  work) and the r sub-products run as batched gemms.  This amortizes
  combination overhead across the batch, which is what makes fast
  algorithms viable for *small* per-item dims.

Both produce identical arithmetic per item (the stacked mode just
reorders the batch loop inside each operation), so results agree to
roundoff; the tests pin that.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.spec import AlgorithmLike
from repro.core.engine import default_engine
from repro.linalg.blocking import required_padding

__all__ = ["apa_matmul_batched"]

#: The process-wide engine; bound once — it is never replaced.
_ENGINE = default_engine()


def apa_matmul_batched(
    A: np.ndarray,
    B: np.ndarray,
    algorithm: AlgorithmLike | str,
    lam: float | None = None,
    mode: str | None = None,
    d: int | None = None,
    plan_cache=None,
) -> np.ndarray:
    """Multiply ``A[i] @ B[i]`` for every batch item with a fast rule.

    ``A`` has shape ``(batch, M, N)``, ``B`` ``(batch, N, K)``; returns
    ``(batch, M, K)``.  One recursive step.  Surrogates are executed per
    item through their error model.

    A thin shim over :meth:`repro.core.engine.ExecutionEngine.batched`;
    ``mode`` maps to the config field ``batch_mode`` (default
    ``'stacked'``, or the active
    :func:`~repro.core.config.execution_context`'s).

    Stacked mode shares the cached :class:`~repro.core.plan.ExecutionPlan`
    machinery for its padded dims, coefficients, and nonzero term lists
    (the batch axis is per-call, so no workspace arena is pooled);
    ``plan_cache=False`` rebuilds everything per call.
    """
    return _ENGINE.batched(A, B, algorithm, lam=lam, batch_mode=mode,
                           d=d, plan_cache=plan_cache)


def _batched_matmul_impl(
    A: np.ndarray,
    B: np.ndarray,
    algorithm: AlgorithmLike,
    lam: float | None,
    mode: str,
    d: int | None,
    plan_cache,
) -> np.ndarray:
    """The pre-refactor ``apa_matmul_batched`` body, engine-owned.

    Only :mod:`repro.core.engine` may call this (staticcheck ENG001
    enforces it).
    """
    if A.ndim != 3 or B.ndim != 3:
        raise ValueError("batched operands must be 3-D (batch, rows, cols)")
    if A.shape[0] != B.shape[0]:
        raise ValueError(f"batch sizes differ: {A.shape[0]} vs {B.shape[0]}")
    if A.shape[2] != B.shape[1]:
        raise ValueError(f"inner dims mismatch: {A.shape} @ {B.shape}")
    if mode not in ("loop", "stacked"):
        raise ValueError("mode must be 'loop' or 'stacked'")

    from repro.core.apa_matmul import apa_matmul

    batch, M, N = A.shape
    K = B.shape[2]
    if batch == 0:
        dtype = np.result_type(A.dtype, B.dtype)
        return np.zeros((0, M, K), dtype=dtype)

    if algorithm.is_surrogate or mode == "loop":
        return np.stack([
            apa_matmul(A[i], B[i], algorithm, lam=lam, d=d)
            for i in range(batch)
        ])

    from repro.core.lam import optimal_lambda, precision_bits

    dtype = np.result_type(A.dtype, B.dtype)
    if lam is None:
        if d is None:
            d = precision_bits(dtype) if dtype.kind == "f" else 52
        lam = optimal_lambda(algorithm, d=d)

    m, n, k = algorithm.m, algorithm.n, algorithm.k

    from repro.core.plan import resolve_plan_cache, term_lists

    cache = resolve_plan_cache(plan_cache)
    if cache is not None and A.dtype == B.dtype and A.dtype.kind == "f":
        plan = cache.plan_for(algorithm, M, N, K, A.dtype, lam,
                              mode="batched")
        part = plan.partition
        Mp, Np, Kp = (part.padded_rows_a, part.padded_cols_a,
                      part.padded_cols_b)
        s_terms, t_terms, w_terms = plan.s_terms, plan.t_terms, plan.w_terms
    else:
        Mp, Np, Kp = (required_padding(M, m), required_padding(N, n),
                      required_padding(K, k))
        s_terms, t_terms, w_terms = term_lists(
            *algorithm.evaluate(lam, dtype=dtype))

    Ap = np.zeros((batch, Mp, Np), dtype=dtype)
    Ap[:, :M, :N] = A
    Bp = np.zeros((batch, Np, Kp), dtype=dtype)
    Bp[:, :N, :K] = B
    bm, bn, bk = Mp // m, Np // n, Kp // k

    a_blocks = [Ap[:, i * bm:(i + 1) * bm, j * bn:(j + 1) * bn]
                for i in range(m) for j in range(n)]
    b_blocks = [Bp[:, i * bn:(i + 1) * bn, j * bk:(j + 1) * bk]
                for i in range(n) for j in range(k)]

    C = np.zeros((batch, Mp, Kp), dtype=dtype)
    c_blocks = [C[:, i * bm:(i + 1) * bm, j * bk:(j + 1) * bk]
                for i in range(m) for j in range(k)]
    initialized = [False] * len(c_blocks)

    def combine(blocks: list[np.ndarray], terms) -> np.ndarray:
        if not terms:
            return np.zeros_like(blocks[0])
        idx0, c0 = terms[0]
        # copy lazily only if we will accumulate
        out = blocks[idx0] if c0 == 1 else c0 * blocks[idx0]
        for idx, c in terms[1:]:
            blk = blocks[idx]
            if out.base is not None or out is blk:
                out = out.copy()
            if c == 1:
                out += blk
            elif c == -1:
                out -= blk
            else:
                out += c * blk
        return out

    for t in range(algorithm.rank):
        S = combine(a_blocks, s_terms[t])
        T = combine(b_blocks, t_terms[t])
        P = np.matmul(S, T)  # batched gemm over the leading axis
        for q, w in w_terms[t]:
            target = c_blocks[q]
            if not initialized[q]:
                if w == 1:
                    target[...] = P
                else:
                    np.multiply(P, w, out=target)
                initialized[q] = True
            elif w == 1:
                target += P
            elif w == -1:
                target -= P
            else:
                target += w * P

    return np.ascontiguousarray(C[:, :M, :K])
