#!/usr/bin/env python3
"""Train the paper's MLP with APA hidden products (Figs 4-5).

Run:  python examples/mlp_mnist.py [--algorithms bini322 smirnov444]
                                   [--epochs 8] [--train 6000] [--test 1000]

Reproduces the §4.2 protocol at configurable scale: the 784-300-300-10
network, batch-300 SGD, APA matmul injected only into the middle
(300x300x300) products of both the forward and backward passes, and a
classical baseline for comparison.  The punchline — APA error does not
hurt learning — shows up within a few epochs.
"""

import argparse

import numpy as np

from repro.core.backend import make_backend
from repro.data.synth_mnist import load_synth_mnist
from repro.nn.mlp import build_accuracy_mlp


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--algorithms", nargs="*",
                        default=["bini322", "schonhage333", "smirnov444"],
                        help="catalog names to compare against classical")
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--train", type=int, default=6000)
    parser.add_argument("--test", type=int, default=1000)
    parser.add_argument("--batch", type=int, default=300)
    parser.add_argument("--lr", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"generating synthetic MNIST ({args.train} train / {args.test} test)...")
    (x_train, y_train), (x_test, y_test) = load_synth_mnist(
        n_train=args.train, n_test=args.test, seed=args.seed
    )

    results = {}
    for name in ["classical"] + args.algorithms:
        backend = make_backend(None if name == "classical" else name)
        model = build_accuracy_mlp(hidden_backend=backend,
                                   rng=np.random.default_rng(args.seed))
        print(f"\n=== {name} ===")
        history = model.fit(
            x_train, y_train,
            epochs=args.epochs, batch_size=args.batch, lr=args.lr,
            x_test=x_test, y_test=y_test,
            rng=np.random.default_rng(args.seed + 1),
            verbose=True,
        )
        results[name] = history

    print("\nFinal test accuracy (paper Fig 5b: all algorithms land in the "
          "same high band):")
    for name, history in results.items():
        print(f"  {name:14s} {history.test_accuracy[-1]:.4f}")


if __name__ == "__main__":
    main()
