#!/usr/bin/env python3
"""Regenerate the paper's performance figures from the machine model.

Run:  python examples/performance_study.py [--dims 2048 4096 8192]
                                           [--threads 1 6 12]

Prints the Fig-3 panels (standalone matmul, effective GFLOPS), the Fig-6
panels (MLP training time relative to classical), the strategy ablation,
and — on a multicore host — optionally wall-clocks the real threaded
executor for comparison (``--measure``).
"""

import argparse

from repro.experiments.ablations import run_strategy_ablation
from repro.experiments.fig3_matmul_perf import format_fig3, run_fig3
from repro.experiments.fig6_mlp_training import format_fig6, run_fig6


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dims", type=int, nargs="*",
                        default=[2048, 4096, 8192])
    parser.add_argument("--threads", type=int, nargs="*", default=[1, 6, 12])
    parser.add_argument("--algorithms", nargs="*",
                        default=["bini322", "alekseev422", "smirnov442",
                                 "smirnov444", "smirnov555"])
    parser.add_argument("--measure", action="store_true",
                        help="also wall-clock the real threaded executor "
                             "(use on a multicore host; real algorithms only)")
    args = parser.parse_args()

    for threads in args.threads:
        points = run_fig3(threads=threads, dims=tuple(args.dims),
                          algorithms=tuple(args.algorithms))
        print(format_fig3(points))
        print()

    if args.measure:
        for threads in args.threads:
            points = run_fig3(threads=threads, dims=tuple(args.dims),
                              algorithms=tuple(args.algorithms),
                              mode="measured")
            print(format_fig3(points))
            print()

    for threads in args.threads:
        points = run_fig6(threads=threads, widths=tuple(args.dims),
                          algorithms=tuple(args.algorithms))
        print(format_fig6(points))
        print()

    print("Strategy ablation (hybrid vs BFS vs DFS, <4,4,4> at n=8192, "
          "6 threads):")
    for row in run_strategy_ablation():
        print(f"  {row.strategy:7s} {row.seconds:7.3f}s  "
              f"{row.relative_to_hybrid:.3f}x hybrid")


if __name__ == "__main__":
    main()
