#!/usr/bin/env python3
"""Quickstart: multiply matrices with APA algorithms.

Run:  python examples/quickstart.py

Walks through the library's core loop: pick an algorithm from the
Table-1 catalog, multiply with it, inspect the approximation error, and
let the lambda tuner pick the APA parameter — everything the paper's §2
does, in a dozen lines of user code.
"""

import numpy as np

from repro import (
    apa_matmul,
    get_algorithm,
    list_algorithms,
    optimal_lambda,
    tune_lambda,
)

def main() -> None:
    rng = np.random.default_rng(0)
    n = 512
    A = rng.random((n, n)).astype(np.float32)
    B = rng.random((n, n)).astype(np.float32)
    C_exact = A.astype(np.float64) @ B.astype(np.float64)

    print("Catalog:", ", ".join(list_algorithms("table1")))
    print()
    print(f"{'algorithm':14s} {'dims:rank':12s} {'speedup':>8s} "
          f"{'lambda*':>9s} {'rel error':>10s} {'bound':>9s}")
    for name in ("bini322", "alekseev422", "schonhage333", "smirnov442",
                 "smirnov444", "smirnov555"):
        alg = get_algorithm(name)
        C = apa_matmul(A, B, alg)  # lambda defaults to the theory optimum
        err = np.linalg.norm(C - C_exact) / np.linalg.norm(C_exact)
        print(f"{name:14s} {alg.signature():12s} "
              f"{alg.speedup_percent:7.0f}% {optimal_lambda(alg):9.1e} "
              f"{err:10.2e} {alg.error_bound(23):9.1e}")

    print()
    # The empirical tuner scans the 5 nearest powers of two (paper §2.3).
    alg = get_algorithm("bini322")
    lam, err = tune_lambda(alg, n=256, dtype=np.float32)
    print(f"tuned lambda for {alg.name}: {lam:.2e} "
          f"(theory {optimal_lambda(alg):.2e}), rel error {err:.2e}")

    # Exact fast algorithms (Strassen-family) cost fewer flops with no
    # approximation at all:
    C = apa_matmul(A, B, get_algorithm("strassen444"))
    err = np.linalg.norm(C - C_exact) / np.linalg.norm(C_exact)
    print(f"strassen444 (exact, 31% fewer mults): rel error {err:.1e}")


if __name__ == "__main__":
    main()
