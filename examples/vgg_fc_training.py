#!/usr/bin/env python3
"""VGG-19 fully connected layers with the <4,4,2> algorithm (Fig 7, §5).

Run:  python examples/vgg_fc_training.py [--scale 8] [--batch 256]

Two parts:

1. a *real* training step of the (width-scaled) 25088-4096-4096-1000 FC
   head through the library's NN stack, with a fully-coefficiented fast
   algorithm on all three layers — demonstrating the actual code path the
   paper accelerates;
2. the *paper-scale projection* from the calibrated machine model: the
   per-batch training time of the full-size FC head, classical vs
   <4,4,2>, across batch sizes at 1 and 6 threads (the Fig-7 series).
"""

import argparse
import time

import numpy as np

from repro.core.backend import make_backend
from repro.experiments.fig7_vgg import format_fig7, run_fig7
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.optim import SGD
from repro.nn.vgg import VGG19_FC_SIZES, build_vgg19_fc


def real_training_step(scale: int, batch: int, backend_name: str) -> None:
    sizes = tuple(max(10, s // scale) for s in VGG19_FC_SIZES)
    print(f"real FC head at 1/{scale} width: {sizes}, batch {batch}, "
          f"backend {backend_name}")
    model = build_vgg19_fc(backend=make_backend(backend_name), sizes=sizes,
                           rng=np.random.default_rng(0))
    rng = np.random.default_rng(1)
    x = rng.random((batch, sizes[0])).astype(np.float32)
    y = rng.integers(0, sizes[3], batch)
    loss = SoftmaxCrossEntropy()
    opt = SGD(model.parameters(), lr=0.01)

    for step in range(3):
        t0 = time.perf_counter()
        logits = model.forward(x, training=True)
        value = loss.forward(logits, y)
        opt.zero_grad()
        model.backward(loss.backward())
        opt.step()
        print(f"  step {step + 1}: loss {value:.4f} "
              f"({time.perf_counter() - t0:.3f}s)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=8,
                        help="width divisor for the real training demo")
    parser.add_argument("--batch", type=int, default=256)
    parser.add_argument("--backend", default="strassen422",
                        help="real algorithm for the demo (needs full "
                             "coefficients; strassen422 is the <4,2,2> "
                             "exact rule)")
    args = parser.parse_args()

    real_training_step(args.scale, args.batch, args.backend)

    print("\npaper-scale projection (calibrated machine model):\n")
    print(format_fig7(run_fig7()))
    print("\nPaper headline: up to 15% sequential / 10% six-thread speedup "
          "on the FC layers with <4,4,2>.")


if __name__ == "__main__":
    main()
