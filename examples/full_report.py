#!/usr/bin/env python3
"""Regenerate the whole paper into one markdown report.

Run:  python examples/full_report.py [--scale ci|paper] [--out REPORT.md]

Runs every experiment driver (Table 1, Figs 1-7, ablations, extensions)
at the chosen scale and writes a single document.  ``ci`` takes a couple
of minutes on one core; ``paper`` runs the full protocol (hours for the
training figures).
"""

import argparse

from repro.experiments.report import generate_report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["ci", "paper", "micro"],
                        default="ci")
    parser.add_argument("--out", default="REPORT.md")
    args = parser.parse_args()

    text = generate_report(path=args.out, scale=args.scale)
    lines = text.count("\n")
    print(f"wrote {args.out} ({lines} lines, scale={args.scale})")
    # headline extraction
    for line in text.splitlines():
        if line.startswith("## "):
            print(" ", line[3:])


if __name__ == "__main__":
    main()
