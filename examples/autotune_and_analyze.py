#!/usr/bin/env python3
"""Decide, inspect, and explain: the practical workflow.

Run:  python examples/autotune_and_analyze.py

A downstream user's session end to end:

1. *Which algorithm should my product use?* — the selection map over
   sizes and thread counts, with an error budget;
2. *Why does that one win?* — the per-algorithm analytics report and the
   schedule trace (a Gantt view of the hybrid strategy, showing the
   12-thread remainder products that kill ``<4,4,4>``);
3. *What changes on other hardware?* — the machine-balance sensitivity
   study (the paper's §6 GPU argument, quantified).
"""

from repro.algorithms.analysis import analyze_algorithm
from repro.algorithms.catalog import get_algorithm
from repro.experiments.hardware import (
    format_hardware_sensitivity,
    run_hardware_sensitivity,
)
from repro.parallel.autotune import select_algorithm, selection_table
from repro.parallel.tracing import render_gantt, trace_schedule


def main() -> None:
    print("=== 1. algorithm selection map (max_error 2e-2) ===")
    table = selection_table(dims=(512, 2048, 8192), threads_list=(1, 6, 12),
                            max_error=2e-2)
    for (n, threads), sel in sorted(table.items(), key=lambda x: (x[0][1], x[0][0])):
        print(f"  n={n:5d} p={threads:2d}: {sel.algorithm:12s} "
              f"({sel.speedup_vs_classical * 100:+.1f}%, "
              f"error <= {sel.error_bound:.0e})")

    print("\n=== 2a. why: the winner's analytics ===")
    winner = select_algorithm(8192, 8192, 8192, threads=12).algorithm
    print(analyze_algorithm(winner, crossover=True).describe())

    print("\n=== 2b. why <4,4,4> loses at 12 threads: the trace ===")
    trace = trace_schedule(get_algorithm("smirnov444"), 8192, 8192, 8192,
                           threads=12)
    remainder = [s for s in trace.by_kind("mult") if s.threads == 12]
    print(render_gantt(trace_schedule(get_algorithm("smirnov444"),
                                      8192, 8192, 8192, threads=4)))
    print(f"  at 12 threads, {len(remainder)} remainder products take "
          f"{sum(s.duration for s in remainder) / trace.total * 100:.0f}% "
          "of the timeline")

    print("\n=== 3. hardware sensitivity ===")
    print(format_hardware_sensitivity(run_hardware_sensitivity()))


if __name__ == "__main__":
    main()
