#!/usr/bin/env python3
"""Tour of the algorithm machinery: verify, transform, generate, search.

Run:  python examples/algorithm_explorer.py

Shows the library's symbolic layer at work:

1. symbolic verification of every real algorithm in the catalog (exact
   rational arithmetic — a passing report is a proof);
2. building new algorithms from old via the paper's §6 transforms
   (permutation, tensor product, stacking);
3. the code generator's output for Bini's rule (paper §3);
4. ALS numerically rediscovering a rank-7 <2,2,2> algorithm — the route
   by which the Smirnov-class rules of Table 1 were found.
"""

import numpy as np

from repro.algorithms.bini import bini322_algorithm
from repro.algorithms.catalog import get_algorithm, list_algorithms
from repro.algorithms.search import discover_algorithm
from repro.algorithms.strassen import strassen_algorithm
from repro.algorithms.transforms import permute, stack_m, tensor_product
from repro.algorithms.verify import verify_algorithm
from repro.codegen.generate import generate_source


def main() -> None:
    print("=== 1. symbolic verification of the real catalog ===")
    for name in list_algorithms("real"):
        alg = get_algorithm(name)
        report = verify_algorithm(alg)
        print(f"  {name:18s} {alg.signature():12s} phi={alg.phi}  "
              f"{report.summary()}")

    print("\n=== 2. composing new algorithms ===")
    bini = bini322_algorithm()
    strassen = strassen_algorithm()
    for alg in (
        permute(bini, (1, 2, 0), name="bini-rotated"),
        tensor_product(bini, strassen, name="bini(x)strassen"),
        stack_m(bini, bini, name="bini-stacked"),
    ):
        report = verify_algorithm(alg)
        print(f"  {alg.name:18s} {alg.signature():12s} "
              f"speedup {alg.speedup_percent:5.1f}%  {report.summary()}")

    print("\n=== 3. generated code for Bini's <3,2,2> rule (excerpt) ===")
    source = generate_source(bini)
    for line in source.splitlines()[:30]:
        print("  " + line)
    print("  ...")

    print("\n=== 4. ALS rediscovers Strassen's rank ===")
    result = discover_algorithm(2, 2, 2, 7, restarts=8, iters=800, seed=0)
    print(f"  rank-7 <2,2,2> search: residual {result.residual:.2e}, "
          f"converged={result.converged}")
    result5 = discover_algorithm(2, 2, 2, 5, restarts=2, iters=150, seed=0)
    print(f"  rank-5 (impossible) search: residual {result5.residual:.2e} "
          "— correctly stalls, no such algorithm exists")


if __name__ == "__main__":
    main()
